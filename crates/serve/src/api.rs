//! The HTTP API: routes, the wire protocol, and the exact result cache.
//!
//! Every request is validated against the model's **inferred observation
//! protocol** (the query layer's `validate_observations`) before a single
//! particle runs, so malformed inputs become structured `400` bodies with
//! the stable machine-readable codes of `QueryError::code` /
//! `ObsViolation::code` — never worker crashes, never a `500`.
//!
//! Routes:
//!
//! * `GET /healthz` — liveness plus the number of servable models;
//! * `GET /metrics` — request counts per route, a latency histogram, the
//!   cache hit rate, and the artifact store's figures;
//! * `GET /v1/models` — the registry listing with each model's rendered
//!   latent and observation protocols;
//! * `POST /v1/query` — run one inference request (see below); with an
//!   `"artifact"` field, draw from a fitted guide without refitting;
//! * `POST /v1/batch` — run one method over many observation sets;
//! * `POST /v1/fit` — run a VI fit and persist it as an artifact
//!   ([`crate::fit`]);
//! * `GET/DELETE /v1/artifacts[/{id}]` — the artifact lifecycle.
//!
//! # The query wire format
//!
//! ```json
//! {
//!   "model": "ex-1",
//!   "observations": [0.8, true, {"nat": 3}],
//!   "method": {"algorithm": "importance", "particles": 2000},
//!   "seed": 7,
//!   "threads": 1,
//!   "block": 64,
//!   "guide_args": [7.4, 0.6],
//!   "sample_index": 0
//! }
//! ```
//!
//! Observations are `true`/`false` (bool carrier), bare numbers (real
//! carriers), or `{"nat": n}` (nat carriers — JSON numbers alone cannot
//! distinguish `nat` from `real`).  Methods are
//! `{"algorithm": "importance", "particles": N}`,
//! `{"algorithm": "mh", "iterations": N, "burn_in": N}`, or
//! `{"algorithm": "vi", ...}` whose fields (`iterations`,
//! `samples_per_iteration`, `learning_rate`, `fd_epsilon`, `params`,
//! `draw_particles`) all default sensibly — `params` to the registry's
//! initial variational parameters.
//!
//! # Determinism and the cache
//!
//! A response is a pure function of the request fingerprint (model,
//! exact observation bits, method configuration, seed, statistic): all
//! randomness comes from the request's seed, and thread counts and block
//! sizes are excluded from the fingerprint because the engine's results
//! are bit-identical for every thread count and every vectorised block
//! size.  The LRU cache therefore returns
//! **byte-identical** responses on warm hits while running zero particles
//! (`X-Cache: hit`).

use crate::cache::ResponseCache;
use crate::http::{Handler, Request, Response};
use crate::json::{Json, JsonError};
use crate::metrics::Metrics;
use crate::registry::{ModelEntry, Registry};
use guide_ppl::runtime::{CancelToken, RuntimeError};
use guide_ppl::{Method, Posterior, PosteriorResult, Query, QueryError, SessionError};
use ppl_dist::Sample;
use ppl_inference::{ParamSpec, PosteriorSummary, ViConfig};
use ppl_semantics::value::Value;
use ppl_store::Store;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Completed request traces retained by the flight recorder's ring
/// buffer (served by `GET /v1/trace`); the oldest is evicted first.
pub const TRACE_RING_CAPACITY: usize = 64;

/// Per-endpoint overload limits and deadline defaults.
///
/// Concurrency caps bound the number of requests *running inference* at
/// once, per endpoint class — fits cost far more than queries, so they
/// get a much smaller cap.  Request number `cap + 1` is shed with a
/// `429 server.overloaded` + `Retry-After` before any particle runs.
/// These caps sit *behind* the transport-level admission queue
/// ([`crate::http::ServerConfig::queue_capacity`]): the queue bounds
/// accepted connections, the caps bound expensive work per endpoint.
#[derive(Debug, Clone)]
pub struct AppLimits {
    /// Deadline applied to requests that don't send `"deadline_ms"`;
    /// `None` means no default deadline (the library default, so embedded
    /// uses are unaffected; the `ppl-serve` binary sets 30 000 ms).
    pub default_deadline_ms: Option<u64>,
    /// Maximum concurrently *running* `/v1/query` + `/v1/batch` requests.
    pub query_concurrency: usize,
    /// Maximum concurrently running `/v1/fit` requests.
    pub fit_concurrency: usize,
    /// The `Retry-After` value (whole seconds) on cap-shed responses.
    pub retry_after_secs: u64,
}

impl Default for AppLimits {
    fn default() -> Self {
        AppLimits {
            default_deadline_ms: None,
            query_concurrency: 32,
            fit_concurrency: 4,
            retry_after_secs: 1,
        }
    }
}

/// The served application: registry, cache, metrics, and artifact store.
#[derive(Debug)]
pub struct App {
    /// The compiled-session registry.
    pub registry: Registry,
    /// The exact response cache.
    pub cache: ResponseCache,
    /// Request metrics.
    pub metrics: Metrics,
    /// The fitted-guide artifact store (`--store-dir`; in-memory when the
    /// flag is absent).
    pub store: Arc<Store>,
    /// Block size used by the vectorised particle executor when a request
    /// does not set its own `"block"` field (the `--block` flag).  Purely
    /// a performance knob: results are bit-identical at every block size,
    /// so it is excluded from cache fingerprints.
    pub default_block: usize,
    /// Overload limits and deadline defaults.
    pub limits: AppLimits,
    /// The flight recorder: per-(route, phase) span histograms, the
    /// `GET /v1/trace` ring of completed request traces, and the
    /// engine-quality gauges.  Shared with the transport layer (via
    /// [`crate::http::ServerConfig::recorder`]) so socket read/write
    /// phases land in the same traces.
    pub obs: Arc<ppl_obs::Recorder>,
    /// The server-wide drain token: every request token derives from it,
    /// so [`App::begin_drain`] cancels all in-flight inference at once.
    drain: CancelToken,
    /// `/v1/query` + `/v1/batch` requests currently running inference.
    pub(crate) inflight_query: AtomicUsize,
    /// `/v1/fit` requests currently running inference.
    pub(crate) inflight_fit: AtomicUsize,
}

impl App {
    /// Creates an app over a registry with the given cache capacity and
    /// the default vectorised-execution block size.
    pub fn new(registry: Registry, cache_capacity: usize) -> Arc<App> {
        App::with_block(registry, cache_capacity, ppl_inference::DEFAULT_BLOCK)
    }

    /// [`App::new`] with an explicit default block size (clamped to ≥ 1).
    pub fn with_block(registry: Registry, cache_capacity: usize, block: usize) -> Arc<App> {
        App::with_store(
            registry,
            cache_capacity,
            block,
            Arc::new(Store::in_memory(ppl_store::DEFAULT_STORE_CAPACITY)),
        )
    }

    /// [`App::with_block`] over an explicit artifact store — the
    /// constructor `ppl-serve` uses when `--store-dir` is set, so a
    /// restart warm-starts the artifact index from disk.
    pub fn with_store(
        registry: Registry,
        cache_capacity: usize,
        block: usize,
        store: Arc<Store>,
    ) -> Arc<App> {
        App::with_limits(registry, cache_capacity, block, store, AppLimits::default())
    }

    /// The full constructor: explicit store *and* explicit overload
    /// limits / deadline defaults.
    pub fn with_limits(
        registry: Registry,
        cache_capacity: usize,
        block: usize,
        store: Arc<Store>,
        limits: AppLimits,
    ) -> Arc<App> {
        Arc::new(App {
            registry,
            cache: ResponseCache::new(cache_capacity),
            metrics: Metrics::new(),
            store,
            default_block: block.max(1),
            limits,
            obs: Arc::new(ppl_obs::Recorder::new(
                &crate::metrics::ROUTES,
                TRACE_RING_CAPACITY,
            )),
            drain: CancelToken::new(),
            inflight_query: AtomicUsize::new(0),
            inflight_fit: AtomicUsize::new(0),
        })
    }

    /// Raises the server-wide drain token: every in-flight request's
    /// cancel token fires at its next poll (one particle block at most),
    /// and new work is rejected with `503 server.draining`.  Irreversible
    /// for this app instance — drain precedes shutdown.
    pub fn begin_drain(&self) {
        self.drain.cancel();
    }

    /// Whether [`App::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.drain.is_cancelled()
    }

    /// Builds the cancel token for one request: the server drain flag plus
    /// the request's effective deadline (`deadline_ms`, falling back to
    /// [`AppLimits::default_deadline_ms`]).
    pub(crate) fn request_token(&self, deadline_ms: Option<u64>) -> CancelToken {
        match deadline_ms.or(self.limits.default_deadline_ms) {
            Some(ms) => self.drain.deadline_in(Duration::from_millis(ms)),
            None => self.drain.clone(),
        }
    }

    /// The HTTP handler for [`crate::http::Server::bind`]: routes the
    /// request and records metrics.  Handler panics are caught here —
    /// counted in `/metrics` (`server.panics_total`) and answered with the
    /// structured `500 server.panic` body — so one poisoned request
    /// neither kills a worker nor goes missing from the metrics.
    pub fn handler(self: &Arc<App>) -> Handler {
        let app = Arc::clone(self);
        Arc::new(move |req: &Request| {
            let start = Instant::now();
            // The trace id is a pure function of the request bytes plus a
            // process epoch counter — deterministic, RNG-free, distinct
            // under concurrency.
            let trace_id = app.obs.begin(ppl_obs::trace::request_hash(&[
                req.method.as_bytes(),
                req.path.as_bytes(),
                &req.body,
            ]));
            // Fold in the socket-read time the transport stashed before
            // this trace existed (always drain the slot, even untraced,
            // so a stale value cannot leak into a later request).
            let read_nanos = ppl_obs::trace::take_pending_read_nanos();
            if read_nanos > 0 {
                ppl_obs::trace::record_phase_nanos(ppl_obs::Phase::HttpRead, read_nanos);
            }
            let mut response =
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(&app, req))) {
                    Ok(response) => response,
                    Err(_) => {
                        app.metrics.record_panic();
                        ApiError::new(500, "server.panic", "internal handler panic").to_response()
                    }
                };
            let route_name = crate::metrics::normalize_route(&req.path);
            app.metrics.record(
                &req.path,
                response.status,
                start.elapsed().as_secs_f64() * 1e3,
            );
            if trace_id.is_some() {
                if let Some(id) = app.obs.finish(route_name, response.status) {
                    response = response.with_header("X-Ppl-Trace-Id", &id);
                }
            }
            response
        })
    }
}

/// RAII in-flight slot on one of the per-endpoint concurrency gauges;
/// dropping it releases the slot.
pub(crate) struct InflightGuard<'a> {
    gauge: &'a AtomicUsize,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Claims an in-flight slot under `cap`, or sheds with a
/// `429 server.overloaded` (+`Retry-After`) counted in the metrics.
pub(crate) fn acquire_slot<'a>(
    app: &'a App,
    gauge: &'a AtomicUsize,
    cap: usize,
    endpoint: &str,
) -> Result<InflightGuard<'a>, ApiError> {
    // fetch_add-then-check keeps the claim atomic under races; the guard
    // (or the shed path) always undoes the increment.
    if gauge.fetch_add(1, Ordering::SeqCst) >= cap.max(1) {
        gauge.fetch_sub(1, Ordering::SeqCst);
        app.metrics.record_cap_shed();
        return Err(ApiError::new(
            429,
            "server.overloaded",
            format!("too many concurrent {endpoint} requests; retry shortly"),
        )
        .retry_after(app.limits.retry_after_secs));
    }
    Ok(InflightGuard { gauge })
}

/// The `503 server.draining` rejection: retryable (the client should hit
/// another replica) and connection-closing.
fn draining_error(app: &App) -> ApiError {
    ApiError::new(
        503,
        "server.draining",
        "the server is draining and no longer accepts work",
    )
    .retry_after(app.limits.retry_after_secs)
    .close_connection()
}

/// A structured API error: HTTP status plus the machine-readable body.
#[derive(Debug, Clone)]
pub struct ApiError {
    /// HTTP status code (4xx for request errors, 5xx for server faults).
    pub status: u16,
    /// Stable machine-readable code (e.g. `obs.carrier`).
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// Extra structured fields merged into the error object (offending
    /// position, byte offset, batch index, …).
    pub details: Vec<(String, Json)>,
    /// When set, a `Retry-After: <secs>` header is attached — the error is
    /// transient overload and the client should retry (429/503).
    pub retry_after_secs: Option<u64>,
    /// When set, a `Connection: close` header is attached so the transport
    /// closes the connection after this response (drain path).
    pub close: bool,
}

impl ApiError {
    pub(crate) fn new(status: u16, code: &str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code: code.to_string(),
            message: message.into(),
            details: Vec::new(),
            retry_after_secs: None,
            close: false,
        }
    }

    pub(crate) fn with(mut self, key: &str, value: Json) -> ApiError {
        self.details.push((key.to_string(), value));
        self
    }

    /// Marks the error as retryable overload: the response carries
    /// `Retry-After: <secs>`.
    pub(crate) fn retry_after(mut self, secs: u64) -> ApiError {
        self.retry_after_secs = Some(secs);
        self
    }

    /// Marks the response connection-closing (`Connection: close`).
    pub(crate) fn close_connection(mut self) -> ApiError {
        self.close = true;
        self
    }

    /// Renders the error as its HTTP response body:
    /// `{"error": {"code": ..., "message": ..., ...details}}`.
    pub fn to_response(&self) -> Response {
        let mut fields = vec![
            ("code".to_string(), Json::str(self.code.clone())),
            ("message".to_string(), Json::str(self.message.clone())),
        ];
        fields.extend(self.details.iter().cloned());
        let body = Json::Obj(vec![("error".into(), Json::Obj(fields))]);
        let mut response = Response::json(
            self.status,
            body.write()
                .expect("error bodies contain no non-finite numbers"),
        );
        if let Some(secs) = self.retry_after_secs {
            response = response.with_header("Retry-After", &secs.to_string());
        }
        if self.close {
            response = response.with_header("Connection", "close");
        }
        response
    }
}

fn bad_json(err: JsonError) -> ApiError {
    ApiError::new(400, "request.json", err.to_string()).with("offset", Json::Num(err.offset as f64))
}

pub(crate) fn bad_schema(message: impl Into<String>) -> ApiError {
    ApiError::new(400, "request.schema", message)
}

pub(crate) fn from_session_error(err: SessionError) -> ApiError {
    match err {
        SessionError::Query(q) => {
            let mut api = ApiError::new(400, q.code(), q.to_string());
            if let QueryError::Observations { violation, .. } = &q {
                api = api.with("position", Json::Num(violation.position() as f64));
            }
            api
        }
        // Pipeline rejections (parse, guide-type, model–guide
        // compatibility) are the client's fault: a structured 400 with the
        // stable code and, when known, the offending source position.
        e
        @ (SessionError::Parse(_) | SessionError::Type(_) | SessionError::Incompatible { .. }) => {
            let mut api = ApiError::new(400, e.code(), e.to_string());
            if let Some((line, col)) = e.position() {
                api = api
                    .with("line", Json::Num(line as f64))
                    .with("col", Json::Num(col as f64));
            }
            api
        }
        // Deadline expiry is the *client's* budget running out: a 408 with
        // the stable code, answered within one particle-block step of the
        // deadline.  Nothing was cached (serve_one caches only on Ok).
        SessionError::Runtime(RuntimeError::DeadlineExceeded) => ApiError::new(
            408,
            "query.deadline_exceeded",
            "the request deadline passed before inference finished",
        ),
        // A cancelled (not deadline-expired) token means the server began
        // draining mid-request: retryable against another replica.
        SessionError::Runtime(RuntimeError::Cancelled) => ApiError::new(
            503,
            "server.draining",
            "the server is draining and cancelled this request",
        )
        .retry_after(1)
        .close_connection(),
        other => ApiError::new(500, other.code(), other.to_string()),
    }
}

fn route(app: &Arc<App>, req: &Request) -> Response {
    // While draining, reject all mutating / inference work up front with a
    // retryable 503 (connection-closing); health and metrics stay readable
    // so orchestrators can watch the drain complete.
    if app.is_draining() && req.method == "POST" {
        return draining_error(app).to_response();
    }
    // Fault-injection routes, compiled only under the `faults` feature —
    // deliberate failures for the robustness harness, never in release
    // builds.
    #[cfg(feature = "faults")]
    if req.method == "POST" {
        match req.path.as_str() {
            // Exercises the catch_unwind backstop in `handler`.
            "/v1/_faults/panic" => panic!("injected handler panic"),
            // Stalls every vectorised op by `micros`, forcing deadline
            // expiry mid-block.
            "/v1/_faults/stall" => {
                let micros = parse_body(req)
                    .ok()
                    .and_then(|doc| doc.get("micros").and_then(Json::as_u64))
                    .unwrap_or(0);
                ppl_runtime::faults::set_op_stall_micros(micros);
                return Response::json(200, "{\"ok\":true}".to_string());
            }
            _ => {}
        }
    }
    if let Some(id) = req.path.strip_prefix("/v1/models/") {
        return match req.method.as_str() {
            "GET" => crate::ingest::get_model(app, id).unwrap_or_else(|e| e.to_response()),
            "DELETE" => crate::ingest::delete_model(app, id).unwrap_or_else(|e| e.to_response()),
            _ => ApiError::new(
                405,
                "method.not_allowed",
                "wrong HTTP method for this route",
            )
            .to_response(),
        };
    }
    if let Some(id) = req.path.strip_prefix("/v1/artifacts/") {
        return match req.method.as_str() {
            "GET" => crate::fit::get_artifact(app, id).unwrap_or_else(|e| e.to_response()),
            "DELETE" => crate::fit::delete_artifact(app, id).unwrap_or_else(|e| e.to_response()),
            _ => ApiError::new(
                405,
                "method.not_allowed",
                "wrong HTTP method for this route",
            )
            .to_response(),
        };
    }
    if let Some(id) = req.path.strip_prefix("/v1/trace/") {
        return match req.method.as_str() {
            "GET" => crate::trace_api::get_trace(app, id).unwrap_or_else(|e| e.to_response()),
            _ => ApiError::new(
                405,
                "method.not_allowed",
                "wrong HTTP method for this route",
            )
            .to_response(),
        };
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(app),
        ("GET", "/metrics") => metrics(app),
        ("GET", "/v1/models") => models(app),
        ("POST", "/v1/models") => {
            crate::ingest::submit(app, req).unwrap_or_else(|e| e.to_response())
        }
        ("POST", "/v1/query") => query(app, req).unwrap_or_else(|e| e.to_response()),
        ("POST", "/v1/batch") => batch(app, req).unwrap_or_else(|e| e.to_response()),
        ("POST", "/v1/fit") => crate::fit::fit(app, req).unwrap_or_else(|e| e.to_response()),
        ("GET", "/v1/artifacts") => crate::fit::list_artifacts(app),
        ("GET", "/v1/trace") => crate::trace_api::list_traces(app),
        (
            _,
            "/healthz" | "/metrics" | "/v1/models" | "/v1/query" | "/v1/batch" | "/v1/fit"
            | "/v1/artifacts" | "/v1/trace",
        ) => ApiError::new(
            405,
            "method.not_allowed",
            "wrong HTTP method for this route",
        )
        .to_response(),
        _ => ApiError::new(404, "route.unknown", format!("no route '{}'", req.path)).to_response(),
    }
}

fn healthz(app: &App) -> Response {
    let body = Json::Obj(vec![
        ("status".into(), Json::str("ok")),
        ("models".into(), Json::Num(app.registry.len() as f64)),
    ]);
    Response::json(200, body.write().expect("finite"))
}

fn metrics(app: &App) -> Response {
    let mut body = app
        .metrics
        .render(app.cache.hits(), app.cache.misses(), app.cache.len());
    if let Json::Obj(fields) = &mut body {
        let per_model = app
            .registry
            .entries()
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("id".into(), Json::str(e.id.clone())),
                    ("origin".into(), Json::str(e.origin.as_str())),
                    ("submissions".into(), Json::Num(e.submission_count() as f64)),
                    ("queries".into(), Json::Num(e.query_count() as f64)),
                    ("fits".into(), Json::Num(e.fit_count() as f64)),
                    (
                        "particles_per_sec".into(),
                        match e.executions_per_sec() {
                            Some(rate) => Json::num_or_null(rate),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        fields.push((
            "execution".into(),
            Json::Obj(vec![("block".into(), Json::Num(app.default_block as f64))]),
        ));
        fields.push((
            "registry".into(),
            Json::Obj(vec![
                (
                    "builtin".into(),
                    Json::Num(app.registry.builtin_len() as f64),
                ),
                ("user".into(), Json::Num(app.registry.user_len() as f64)),
                (
                    "user_capacity".into(),
                    Json::Num(app.registry.user_capacity() as f64),
                ),
                (
                    "evictions".into(),
                    Json::Num(app.registry.evictions() as f64),
                ),
                ("per_model".into(), Json::Arr(per_model)),
            ]),
        ));
        fields.push((
            "store".into(),
            Json::Obj(vec![
                ("artifacts".into(), Json::Num(app.store.len() as f64)),
                ("bytes".into(), Json::Num(app.store.bytes() as f64)),
                (
                    "warm_starts".into(),
                    Json::Num(app.store.warm_starts() as f64),
                ),
                ("evictions".into(), Json::Num(app.store.evictions() as f64)),
                (
                    "skipped_at_boot".into(),
                    Json::Num(app.store.skipped_at_boot() as f64),
                ),
            ]),
        ));
        fields.push((
            "server".into(),
            Json::Obj(vec![
                (
                    "panics_total".into(),
                    Json::Num(app.metrics.panics() as f64),
                ),
                (
                    "queue_sheds_total".into(),
                    Json::Num(app.metrics.queue_sheds() as f64),
                ),
                (
                    "cap_sheds_total".into(),
                    Json::Num(app.metrics.cap_sheds() as f64),
                ),
                (
                    "inflight_query".into(),
                    Json::Num(app.inflight_query.load(Ordering::SeqCst) as f64),
                ),
                (
                    "inflight_fit".into(),
                    Json::Num(app.inflight_fit.load(Ordering::SeqCst) as f64),
                ),
                ("draining".into(), Json::Bool(app.is_draining())),
            ]),
        ));
        fields.push((
            "limits".into(),
            Json::Obj(vec![
                (
                    "read_timeout_ms".into(),
                    Json::Num(crate::http::READ_TIMEOUT.as_millis() as f64),
                ),
                (
                    "write_timeout_ms".into(),
                    Json::Num(crate::http::WRITE_TIMEOUT.as_millis() as f64),
                ),
                (
                    "max_body_bytes".into(),
                    Json::Num(crate::http::MAX_BODY_BYTES as f64),
                ),
                (
                    "default_deadline_ms".into(),
                    match app.limits.default_deadline_ms {
                        Some(ms) => Json::Num(ms as f64),
                        None => Json::Null,
                    },
                ),
                (
                    "query_concurrency".into(),
                    Json::Num(app.limits.query_concurrency as f64),
                ),
                (
                    "fit_concurrency".into(),
                    Json::Num(app.limits.fit_concurrency as f64),
                ),
            ]),
        ));
        let phases = app
            .obs
            .phase_stats()
            .into_iter()
            .map(|route_stats| {
                (
                    route_stats.route.to_string(),
                    Json::Obj(
                        route_stats
                            .phases
                            .into_iter()
                            .map(|(phase, stat)| {
                                let to_ms = |nanos: u64| Json::num_or_null(nanos as f64 / 1e6);
                                (
                                    phase.as_str().to_string(),
                                    Json::Obj(vec![
                                        ("count".into(), Json::Num(stat.count as f64)),
                                        (
                                            "mean".into(),
                                            Json::num_or_null(
                                                stat.sum_nanos as f64
                                                    / 1e6
                                                    / (stat.count as f64).max(1.0),
                                            ),
                                        ),
                                        ("p50".into(), to_ms(stat.p50_nanos)),
                                        ("p90".into(), to_ms(stat.p90_nanos)),
                                        ("p99".into(), to_ms(stat.p99_nanos)),
                                        ("max".into(), to_ms(stat.max_nanos)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                )
            })
            .collect();
        fields.push(("phases_ms".into(), Json::Obj(phases)));
        let gauge = |value: Option<f64>| match value {
            Some(v) => Json::num_or_null(v),
            None => Json::Null,
        };
        fields.push((
            "engine_quality".into(),
            Json::Obj(vec![
                ("min_ess".into(), gauge(app.obs.min_ess())),
                (
                    "worst_acceptance_rate".into(),
                    gauge(app.obs.worst_acceptance()),
                ),
            ]),
        ));
        fields.push((
            "trace".into(),
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(app.obs.enabled())),
                (
                    "ring_capacity".into(),
                    Json::Num(app.obs.ring_capacity() as f64),
                ),
                ("recorded".into(), Json::Num(app.obs.recorded() as f64)),
            ]),
        ));
    }
    Response::json(200, body.write().expect("finite"))
}

/// The wire representation of one registry entry (used by the listing,
/// `GET /v1/models/{id}`, and the `POST /v1/models` response).
/// `artifacts` is the model's current artifact count in the store.
pub(crate) fn model_json(e: &ModelEntry, artifacts: u64) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::str(e.id.clone())),
        ("name".into(), Json::str(e.name.clone())),
        ("origin".into(), Json::str(e.origin.as_str())),
        ("description".into(), Json::str(e.description.clone())),
        ("default_method".into(), Json::str(e.default_method)),
        (
            "latent_protocol".into(),
            Json::str(e.latent_protocol.clone()),
        ),
        (
            "observation_protocol".into(),
            match &e.observation_protocol {
                Some(p) => Json::str(p.clone()),
                None => Json::Null,
            },
        ),
        (
            "default_observation_count".into(),
            Json::Num(e.default_observation_count as f64),
        ),
        (
            "max_request_executions".into(),
            Json::Num(e.max_request_executions as f64),
        ),
        ("submissions".into(), Json::Num(e.submission_count() as f64)),
        ("queries".into(), Json::Num(e.query_count() as f64)),
        ("fits".into(), Json::Num(e.fit_count() as f64)),
        ("artifacts".into(), Json::Num(artifacts as f64)),
        (
            "guide_params".into(),
            Json::Arr(
                e.guide_param_defaults
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(p.name.clone())),
                            ("init".into(), Json::num_or_null(p.init)),
                            ("positive".into(), Json::Bool(p.positive)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn models(app: &App) -> Response {
    let entries = app
        .registry
        .entries()
        .iter()
        .map(|e| model_json(e, app.store.count_for_model(&e.id)))
        .collect();
    let body = Json::Obj(vec![
        ("models".into(), Json::Arr(entries)),
        (
            "builtin".into(),
            Json::Num(app.registry.builtin_len() as f64),
        ),
        ("user".into(), Json::Num(app.registry.user_len() as f64)),
        (
            "user_capacity".into(),
            Json::Num(app.registry.user_capacity() as f64),
        ),
        (
            "evictions".into(),
            Json::Num(app.registry.evictions() as f64),
        ),
    ]);
    Response::json(200, body.write().expect("finite"))
}

/// Upper bound on the joint executions one request may schedule
/// (particles, MH iterations, or VI mini-batch samples plus draw pass).
/// Larger requests are rejected with `request.limit` so a single request
/// cannot pin a worker thread for hours.
pub const MAX_REQUEST_EXECUTIONS: u64 = 1_000_000;

/// Upper bound on observation sets in one `/v1/batch` request.
pub const MAX_BATCH_ITEMS: usize = 256;

/// A decoded `/v1/query` request (one item of a `/v1/batch` too).
#[derive(Clone)]
struct QueryRequest {
    observations: Vec<Sample>,
    method: Method,
    seed: u64,
    threads: usize,
    block: usize,
    model_args: Vec<Value>,
    guide_args: Vec<Value>,
    sample_index: usize,
    /// The request's cancel token (drain flag + effective deadline).
    /// Cloned batch items share the whole-batch deadline.  Excluded from
    /// the cache fingerprint: a deadline never changes a successful
    /// result, only whether one is produced.
    cancel: CancelToken,
}

fn query(app: &Arc<App>, req: &Request) -> Result<Response, ApiError> {
    let _slot = acquire_slot(
        app,
        &app.inflight_query,
        app.limits.query_concurrency,
        "query",
    )?;
    let doc = {
        let _span = ppl_obs::Span::enter(ppl_obs::Phase::JsonDecode);
        parse_body(req)?
    };
    // `"diagnostics": true` (or `X-Ppl-Trace: 1`) asks for the trace
    // block.  Neither touches the cache fingerprint, and the block is
    // spliced into the response *after* the clean body was cached, so a
    // warm hit stays byte-identical no matter how the cold run was asked.
    let want_trace = req.header("X-Ppl-Trace").map(str::trim) == Some("1")
        || doc
            .get("diagnostics")
            .and_then(Json::as_bool)
            .unwrap_or(false);
    let entry = lookup_model(app, &doc)?;
    if doc.get("artifact").is_some() {
        return crate::fit::artifact_query(app, &doc, &entry);
    }
    let request = decode_request(app, &doc, &entry)?;
    let (body, hit, engine) = serve_one(app, &entry, &request)?;
    let mut text = body.to_string();
    if want_trace {
        splice_trace(&mut text, hit, engine);
    }
    Ok(Response::json(200, text).with_header("X-Cache", if hit { "hit" } else { "miss" }))
}

/// Splices the per-request `"trace"` block (trace id, per-phase span
/// timings so far, engine diagnostics for cold runs) into a response
/// body — strictly *after* the clean body was cached, so diagnostics can
/// never leak into cached bytes.
fn splice_trace(body: &mut String, hit: bool, engine: Option<Json>) {
    if !body.ends_with('}') {
        return;
    }
    let mut fields = vec![
        (
            "trace_id".to_string(),
            match ppl_obs::trace::current_trace_id() {
                Some(id) => Json::str(id),
                None => Json::Null,
            },
        ),
        (
            "cache".to_string(),
            Json::str(if hit { "hit" } else { "miss" }),
        ),
    ];
    if let Some(spans) = ppl_obs::trace::span_snapshot() {
        fields.push((
            "spans_ms".to_string(),
            Json::Obj(
                ppl_obs::PHASES
                    .iter()
                    .filter(|phase| spans[phase.index()] > 0)
                    .map(|phase| {
                        (
                            phase.as_str().to_string(),
                            Json::num_or_null(spans[phase.index()] as f64 / 1e6),
                        )
                    })
                    .collect(),
            ),
        ));
    }
    fields.push(("engine".to_string(), engine.unwrap_or(Json::Null)));
    body.pop();
    body.push_str(",\"trace\":");
    body.push_str(
        &Json::Obj(fields)
            .write()
            .expect("trace blocks map non-finite figures to null"),
    );
    body.push('}');
}

/// Renders a [`ppl_inference::Diagnostics`] as the `"engine"` object of
/// a trace block.
fn engine_json(diag: &ppl_inference::Diagnostics) -> Json {
    let opt = |value: Option<f64>| match value {
        Some(v) => Json::num_or_null(v),
        None => Json::Null,
    };
    let count = |value: Option<u64>| match value {
        Some(v) => Json::Num(v as f64),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("method".into(), Json::str(diag.method)),
        ("num_draws".into(), Json::Num(diag.num_draws as f64)),
        ("ess".into(), Json::num_or_null(diag.ess)),
        ("log_evidence".into(), opt(diag.log_evidence)),
        ("acceptance_rate".into(), opt(diag.acceptance_rate)),
        ("final_elbo".into(), opt(diag.final_elbo)),
        (
            "elbo_tail".into(),
            Json::Arr(
                diag.elbo_tail
                    .iter()
                    .map(|&v| Json::num_or_null(v))
                    .collect(),
            ),
        ),
        ("lane_splits".into(), count(diag.lane_splits)),
        ("lane_reconverges".into(), count(diag.lane_reconverges)),
        ("cancel_checks".into(), count(diag.cancel_checks)),
    ])
}

/// Flattens a [`ppl_inference::Diagnostics`] into the labelled pairs the
/// flight recorder's ring entries carry.
fn engine_pairs(diag: &ppl_inference::Diagnostics) -> Vec<(String, f64)> {
    let mut pairs = vec![
        ("ess".to_string(), diag.ess),
        ("num_draws".to_string(), diag.num_draws as f64),
    ];
    if let Some(v) = diag.log_evidence {
        pairs.push(("log_evidence".to_string(), v));
    }
    if let Some(v) = diag.acceptance_rate {
        pairs.push(("acceptance_rate".to_string(), v));
    }
    if let Some(v) = diag.final_elbo {
        pairs.push(("final_elbo".to_string(), v));
    }
    for (i, v) in diag.elbo_tail.iter().enumerate() {
        pairs.push((format!("elbo_tail.{i}"), *v));
    }
    if let Some(v) = diag.lane_splits {
        pairs.push(("lane_splits".to_string(), v as f64));
    }
    if let Some(v) = diag.lane_reconverges {
        pairs.push(("lane_reconverges".to_string(), v as f64));
    }
    if let Some(v) = diag.cancel_checks {
        pairs.push(("cancel_checks".to_string(), v as f64));
    }
    pairs
}

fn batch(app: &Arc<App>, req: &Request) -> Result<Response, ApiError> {
    // A batch occupies one query slot: its items run sequentially, so it
    // costs the workers one lane regardless of item count.
    let _slot = acquire_slot(
        app,
        &app.inflight_query,
        app.limits.query_concurrency,
        "query",
    )?;
    let doc = parse_body(req)?;
    let entry = lookup_model(app, &doc)?;
    if doc.get("artifact").is_some() {
        // Artifact-warm draws are single-shot by construction (the
        // artifact pins seed and observations); batching them would only
        // repeat one deterministic result.
        return Err(bad_schema(
            "'artifact' is not supported in /v1/batch; use /v1/query",
        ));
    }
    let sets = doc
        .get("observation_sets")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad_schema("'observation_sets' must be an array of observation arrays"))?;
    let seeds: Option<Vec<u64>> = match doc.get("seeds") {
        None => None,
        Some(json) => {
            let items = json
                .as_arr()
                .ok_or_else(|| bad_schema("'seeds' must be an array of integers"))?;
            if items.len() != sets.len() {
                return Err(bad_schema(format!(
                    "'seeds' has {} entries for {} observation sets",
                    items.len(),
                    sets.len()
                )));
            }
            Some(
                items
                    .iter()
                    .map(|s| {
                        s.as_u64()
                            .ok_or_else(|| bad_schema("seeds must be non-negative integers"))
                    })
                    .collect::<Result<_, _>>()?,
            )
        }
    };
    let base_seed = opt_u64(&doc, "seed")?.unwrap_or(0);
    if sets.len() > MAX_BATCH_ITEMS {
        return Err(ApiError::new(
            400,
            "request.limit",
            format!(
                "{} observation sets exceed the per-request limit of {MAX_BATCH_ITEMS}",
                sets.len()
            ),
        ));
    }

    // The shared fields (method, threads, guide args, …) decode once; each
    // item then only decodes its own observation set, keeping batch
    // decoding linear in the number of sets.
    let base = decode_request(app, &doc, &entry)?;

    // Decode and *validate* every item before running anything: a bad
    // item rejects the whole batch with its index, and no partial work is
    // spent on a request that was never going to succeed.
    let mut requests = Vec::with_capacity(sets.len());
    for (i, set) in sets.iter().enumerate() {
        let at = |e: ApiError| e.with("index", Json::Num(i as f64));
        let items = set
            .as_arr()
            .ok_or_else(|| at(bad_schema("each observation set must be an array")))?;
        let mut request = base.clone();
        request.observations = items
            .iter()
            .enumerate()
            .map(|(j, item)| decode_observation(j, item))
            .collect::<Result<_, _>>()
            .map_err(at)?;
        request.seed = match &seeds {
            Some(seeds) => seeds[i],
            None => base_seed + i as u64,
        };
        // Validation (observation protocol, arity, rendezvous) runs now,
        // before any inference.
        build_query(&entry, &request).map_err(at)?;
        requests.push(request);
    }

    let mut results = Vec::with_capacity(requests.len());
    let mut hits = 0usize;
    for (i, request) in requests.iter().enumerate() {
        let (body, hit, _) =
            serve_one(app, &entry, request).map_err(|e| e.with("index", Json::Num(i as f64)))?;
        hits += hit as usize;
        // The cached body is itself a JSON document; splice it verbatim so
        // each result stays byte-identical to its `/v1/query` response.
        results.push(body);
    }
    let mut body = String::from("{\"model\":");
    body.push_str(&Json::str(entry.id.clone()).write().expect("finite"));
    body.push_str(",\"count\":");
    body.push_str(&results.len().to_string());
    body.push_str(",\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(r);
    }
    body.push_str("]}");
    Ok(Response::json(200, body).with_header("X-Cache-Hits", &hits.to_string()))
}

pub(crate) fn parse_body(req: &Request) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| bad_schema("request body is not valid UTF-8"))?;
    Json::parse(text).map_err(bad_json)
}

/// Resolves the request's `"model"` field against the registry without
/// touching demand counters (the fit route counts fits, not queries).
pub(crate) fn find_model(app: &Arc<App>, doc: &Json) -> Result<Arc<ModelEntry>, ApiError> {
    let name = doc
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| bad_schema("'model' must be a string"))?;
    app.registry.get(name).ok_or_else(|| {
        ApiError::new(
            404,
            "model.unknown",
            format!("no model '{name}' in the registry"),
        )
    })
}

fn lookup_model(app: &Arc<App>, doc: &Json) -> Result<Arc<ModelEntry>, ApiError> {
    let entry = find_model(app, doc)?;
    // Counts every request addressed to the model, whether or not it later
    // validates — the metric is demand, not success.
    entry.record_query();
    Ok(entry)
}

/// Runs one request through the cache: a hit returns the stored body
/// (zero particles run), a miss validates, runs inference, and stores the
/// body.  Consulting the cache *before* validation is sound because the
/// fingerprint encoding is injective: a hit means a byte-equivalent
/// request was served before, and that request passed validation.
fn serve_one(
    app: &Arc<App>,
    entry: &ModelEntry,
    request: &QueryRequest,
) -> Result<(Arc<str>, bool, Option<Json>), ApiError> {
    // Keyed by the entry *id*, not the display name: for user models the
    // id is a content hash, so cached bytes stay valid across eviction and
    // re-submission (same id ⇒ same sources ⇒ same deterministic result).
    let fingerprint = fingerprint(&entry.id, request);
    let cached = {
        let _span = ppl_obs::Span::enter(ppl_obs::Phase::CacheLookup);
        app.cache.get(&fingerprint)
    };
    if let Some(body) = cached {
        ppl_obs::trace::annotate("cache", "hit".to_string());
        return Ok((body, true, None));
    }
    ppl_obs::trace::annotate("cache", "miss".to_string());
    let query = {
        let _span = ppl_obs::Span::enter(ppl_obs::Phase::Validate);
        build_query(entry, request)?
    };
    // VI requests spend their run fitting a guide; IS/MH requests spend
    // it drawing.  (The VI posterior's draw stage is folded into the fit
    // span — one request, one inference span.)
    let infer_phase = match request.method {
        Method::Vi { .. } => ppl_obs::Phase::InferFit,
        _ => ppl_obs::Phase::InferDraw,
    };
    // Runtime counters are process-global; under concurrent requests a
    // delta can include a neighbour's blocks, so these figures are
    // attribution hints, not invariants — and they live only in the
    // uncached trace block, never in cached bytes.
    let splits_before = ppl_runtime::stats::lane_splits();
    let reconverges_before = ppl_runtime::stats::lane_reconverges();
    let checks_before = ppl_runtime::stats::cancel_checks();
    let run_started = Instant::now();
    let posterior = {
        let _span = ppl_obs::Span::enter(infer_phase);
        query.run(&request.method).map_err(from_session_error)?
    };
    entry.record_execution(
        scheduled_executions(&request.method),
        run_started.elapsed().as_nanos() as u64,
    );
    let mut diag = posterior.diag();
    diag.lane_splits = Some(ppl_runtime::stats::lane_splits().saturating_sub(splits_before));
    diag.lane_reconverges =
        Some(ppl_runtime::stats::lane_reconverges().saturating_sub(reconverges_before));
    diag.cancel_checks = Some(ppl_runtime::stats::cancel_checks().saturating_sub(checks_before));
    app.obs
        .observe_quality(Some(diag.ess), diag.acceptance_rate);
    ppl_obs::trace::annotate_engine(engine_pairs(&diag));
    let body: Arc<str> = {
        let _span = ppl_obs::Span::enter(ppl_obs::Phase::JsonEncode);
        query_response_json(
            &entry.id,
            &request.method,
            request.seed,
            &posterior,
            request.sample_index,
        )
        .write()
        .expect("response bodies map non-finite statistics to null")
        .into()
    };
    app.cache.insert(fingerprint, Arc::clone(&body));
    Ok((body, false, Some(engine_json(&diag))))
}

fn build_query(entry: &ModelEntry, request: &QueryRequest) -> Result<Query, ApiError> {
    entry
        .session
        .query()
        .observe(request.observations.iter().cloned())
        .seed(request.seed)
        .threads(request.threads)
        .block(request.block)
        .model_args(request.model_args.clone())
        .guide_args(request.guide_args.clone())
        .cancel(request.cancel.clone())
        .build()
        .map_err(|e| from_session_error(SessionError::Query(e)))
}

fn decode_request(app: &App, doc: &Json, entry: &ModelEntry) -> Result<QueryRequest, ApiError> {
    let observations = match doc.get("observations") {
        None => Vec::new(),
        Some(json) => {
            let items = json
                .as_arr()
                .ok_or_else(|| bad_schema("'observations' must be an array"))?;
            items
                .iter()
                .enumerate()
                .map(|(i, item)| decode_observation(i, item))
                .collect::<Result<_, _>>()?
        }
    };
    let method = decode_method(doc.get("method"), entry)?;
    let cost = scheduled_executions(&method);
    // Builtins carry the full MAX_REQUEST_EXECUTIONS budget; user models a
    // reduced one — the same accounting either way.
    if cost > entry.max_request_executions {
        return Err(ApiError::new(
            400,
            "request.limit",
            format!(
                "the request schedules {cost} joint executions, above this model's per-request limit of {}",
                entry.max_request_executions
            ),
        )
        .with("limit", Json::Num(entry.max_request_executions as f64)));
    }
    let seed = opt_u64(doc, "seed")?.unwrap_or(0);
    let threads = opt_u64(doc, "threads")?.unwrap_or(1).max(1) as usize;
    let block = opt_u64(doc, "block")?
        .map(|n| (n as usize).max(1))
        .unwrap_or(app.default_block);
    // The token captures an *absolute* deadline now, at decode time, so
    // queueing and validation spend the same budget inference does.
    let cancel = app.request_token(opt_u64(doc, "deadline_ms")?);
    let sample_index = opt_u64(doc, "sample_index")?.unwrap_or(0) as usize;
    let model_args = real_args(doc, "model_args")?;
    let mut guide_args = real_args(doc, "guide_args")?;
    // IS and MH sample the guide at fixed arguments; when the guide is
    // parameterised and the caller sent none, use the registry's initial
    // values so argument-less requests work out of the box.  (VI ignores
    // guide arguments — it owns the parameters.)
    if guide_args.is_empty() && !matches!(method, Method::Vi { .. }) {
        guide_args = entry
            .guide_param_defaults
            .iter()
            .map(|p| Value::Real(p.init))
            .collect();
    }
    Ok(QueryRequest {
        observations,
        method,
        seed,
        threads,
        block,
        model_args,
        guide_args,
        sample_index,
        cancel,
    })
}

/// Joint executions a method schedules (the work bound enforced by
/// [`MAX_REQUEST_EXECUTIONS`]).
fn scheduled_executions(method: &Method) -> u64 {
    match method {
        Method::Importance { particles } => *particles as u64,
        Method::Mh { iterations, .. } => *iterations as u64,
        Method::Vi {
            config,
            draw_particles,
            ..
        } => (config.iterations as u64)
            .saturating_mul(config.samples_per_iteration as u64)
            .saturating_add(
                draw_particles.unwrap_or(guide_ppl::query::VI_POSTERIOR_PARTICLES) as u64,
            ),
    }
}

pub(crate) fn decode_observation(index: usize, json: &Json) -> Result<Sample, ApiError> {
    match json {
        Json::Bool(b) => Ok(Sample::Bool(*b)),
        Json::Num(x) => Ok(Sample::Real(*x)),
        Json::Obj(_) => {
            if let Some(n) = json.get("nat") {
                let n = n.as_u64().ok_or_else(|| {
                    bad_schema(format!(
                        "observation {index}: 'nat' must be a non-negative integer"
                    ))
                })?;
                Ok(Sample::Nat(n))
            } else if let Some(x) = json.get("real") {
                let x = x.as_f64().ok_or_else(|| {
                    bad_schema(format!("observation {index}: 'real' must be a number"))
                })?;
                Ok(Sample::Real(x))
            } else if let Some(b) = json.get("bool") {
                let b = b.as_bool().ok_or_else(|| {
                    bad_schema(format!("observation {index}: 'bool' must be a boolean"))
                })?;
                Ok(Sample::Bool(b))
            } else {
                Err(bad_schema(format!(
                    "observation {index}: object form must be {{\"nat\"|\"real\"|\"bool\": ...}}"
                )))
            }
        }
        _ => Err(bad_schema(format!(
            "observation {index}: expected a boolean, a number, or a typed object"
        ))),
    }
}

fn decode_method(json: Option<&Json>, entry: &ModelEntry) -> Result<Method, ApiError> {
    let json = json.ok_or_else(|| bad_schema("'method' is required"))?;
    let algorithm = json
        .get("algorithm")
        .and_then(Json::as_str)
        .ok_or_else(|| {
            bad_schema("'method.algorithm' must be \"importance\", \"mh\", or \"vi\"")
        })?;
    match algorithm {
        "importance" => {
            let particles = opt_u64(json, "particles")?.unwrap_or(2_000) as usize;
            Ok(Method::Importance { particles })
        }
        "mh" => {
            let iterations = opt_u64(json, "iterations")?.unwrap_or(2_000) as usize;
            let burn_in = opt_u64(json, "burn_in")?.unwrap_or(iterations as u64 / 10) as usize;
            Ok(Method::Mh {
                iterations,
                burn_in,
            })
        }
        "vi" => {
            let mut config = ViConfig::default();
            if let Some(n) = opt_u64(json, "iterations")? {
                config.iterations = n as usize;
            }
            if let Some(n) = opt_u64(json, "samples_per_iteration")? {
                config.samples_per_iteration = n as usize;
            }
            if let Some(x) = opt_f64(json, "learning_rate")? {
                config.learning_rate = x;
            }
            if let Some(x) = opt_f64(json, "fd_epsilon")? {
                config.fd_epsilon = x;
            }
            let params = match json.get("params") {
                Some(json) => {
                    let items = json
                        .as_arr()
                        .ok_or_else(|| bad_schema("'method.params' must be an array"))?;
                    items
                        .iter()
                        .map(decode_param)
                        .collect::<Result<Vec<_>, _>>()?
                }
                // Default to the registry's initial variational parameters.
                None => entry
                    .guide_param_defaults
                    .iter()
                    .map(|p| {
                        if p.positive {
                            ParamSpec::positive(&p.name, p.init)
                        } else {
                            ParamSpec::unconstrained(&p.name, p.init)
                        }
                    })
                    .collect(),
            };
            let draw_particles = opt_u64(json, "draw_particles")?.map(|n| n as usize);
            Ok(Method::Vi {
                params,
                config,
                draw_particles,
            })
        }
        other => Err(bad_schema(format!(
            "unknown algorithm '{other}' (expected \"importance\", \"mh\", or \"vi\")"
        ))),
    }
}

pub(crate) fn decode_param(json: &Json) -> Result<ParamSpec, ApiError> {
    let name = json
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad_schema("variational params need a string 'name'"))?;
    let init = json
        .get("init")
        .and_then(Json::as_f64)
        .ok_or_else(|| bad_schema("variational params need a numeric 'init'"))?;
    let positive = json
        .get("positive")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    Ok(if positive {
        ParamSpec::positive(name, init)
    } else {
        ParamSpec::unconstrained(name, init)
    })
}

pub(crate) fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, ApiError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(json) => json
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad_schema(format!("'{key}' must be a non-negative integer"))),
    }
}

pub(crate) fn opt_f64(doc: &Json, key: &str) -> Result<Option<f64>, ApiError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(json) => json
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad_schema(format!("'{key}' must be a number"))),
    }
}

pub(crate) fn real_args(doc: &Json, key: &str) -> Result<Vec<Value>, ApiError> {
    match doc.get(key) {
        None => Ok(Vec::new()),
        Some(json) => {
            let items = json
                .as_arr()
                .ok_or_else(|| bad_schema(format!("'{key}' must be an array of numbers")))?;
            items
                .iter()
                .map(|x| {
                    x.as_f64()
                        .map(Value::Real)
                        .ok_or_else(|| bad_schema(format!("'{key}' must be an array of numbers")))
                })
                .collect()
        }
    }
}

/// The canonical request fingerprint: a pure function of everything that
/// can influence the response bytes.  Floats are keyed by their exact IEEE
/// bits, and the engine thread count and vectorised block size are
/// deliberately **excluded** — the determinism guarantee makes results
/// bit-identical across thread counts and block sizes, so requests
/// differing only in `threads` or `block` share a cache line.
fn fingerprint(model: &str, request: &QueryRequest) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "model={model};seed={};idx={};obs=",
        request.seed, request.sample_index
    );
    for obs in &request.observations {
        match obs {
            Sample::Bool(b) => {
                let _ = write!(s, "b{},", *b as u8);
            }
            Sample::Real(x) => {
                let _ = write!(s, "r{:016x},", x.to_bits());
            }
            Sample::Nat(n) => {
                let _ = write!(s, "n{n},");
            }
        }
    }
    s.push_str(";margs=");
    for v in &request.model_args {
        if let Value::Real(x) = v {
            let _ = write!(s, "{:016x},", x.to_bits());
        }
    }
    s.push_str(";gargs=");
    for v in &request.guide_args {
        if let Value::Real(x) = v {
            let _ = write!(s, "{:016x},", x.to_bits());
        }
    }
    s.push_str(";method=");
    match &request.method {
        Method::Importance { particles } => {
            let _ = write!(s, "is:p={particles}");
        }
        Method::Mh {
            iterations,
            burn_in,
        } => {
            let _ = write!(s, "mh:i={iterations},b={burn_in}");
        }
        Method::Vi {
            params,
            config,
            draw_particles,
        } => {
            let _ = write!(
                s,
                "vi:i={},s={},lr={:016x},fd={:016x},d={};params=",
                config.iterations,
                config.samples_per_iteration,
                config.learning_rate.to_bits(),
                config.fd_epsilon.to_bits(),
                draw_particles.unwrap_or(guide_ppl::query::VI_POSTERIOR_PARTICLES),
            );
            for p in params {
                // Length-prefixing the (client-supplied) name keeps the
                // encoding injective: a name containing ':' or ',' cannot
                // forge another parameter list's fingerprint.
                let _ = write!(
                    s,
                    "{}:{}:{:016x}:{},",
                    p.name.len(),
                    p.name,
                    p.init.to_bits(),
                    p.positive as u8
                );
            }
        }
    }
    s
}

/// Serialises a finished inference run as the `/v1/query` response
/// document.  Exposed so tests (and embedders) can produce the exact bytes
/// the HTTP route would return for an in-process [`PosteriorResult`] — the
/// bit-identity acceptance check compares the two.
pub fn query_response_json(
    model: &str,
    method: &Method,
    seed: u64,
    posterior: &PosteriorResult,
    sample_index: usize,
) -> Json {
    let summary = posterior
        .summarize_sample(sample_index)
        .map(|s| summary_json(&s))
        .unwrap_or(Json::Null);
    let diagnostics = posterior
        .diagnostics()
        .into_iter()
        .map(|(k, v)| (k, Json::num_or_null(v)))
        .collect();
    Json::Obj(vec![
        ("model".into(), Json::str(model)),
        ("method".into(), Json::str(method.name())),
        ("seed".into(), Json::Num(seed as f64)),
        ("sample_index".into(), Json::Num(sample_index as f64)),
        ("num_draws".into(), Json::Num(posterior.num_draws() as f64)),
        ("ess".into(), Json::num_or_null(posterior.ess())),
        (
            "log_evidence".into(),
            match posterior.log_evidence() {
                Some(x) => Json::num_or_null(x),
                None => Json::Null,
            },
        ),
        ("diagnostics".into(), Json::Obj(diagnostics)),
        ("summary".into(), summary),
    ])
}

fn summary_json(s: &PosteriorSummary) -> Json {
    Json::Obj(vec![
        ("mean".into(), Json::num_or_null(s.mean)),
        ("variance".into(), Json::num_or_null(s.variance)),
        ("std_dev".into(), Json::num_or_null(s.std_dev())),
        (
            "quantiles".into(),
            Json::Obj(vec![
                ("q05".into(), Json::num_or_null(s.quantiles.q05)),
                ("q25".into(), Json::num_or_null(s.quantiles.q25)),
                ("median".into(), Json::num_or_null(s.quantiles.median)),
                ("q75".into(), Json::num_or_null(s.quantiles.q75)),
                ("q95".into(), Json::num_or_null(s.quantiles.q95)),
            ]),
        ),
        (
            "histogram".into(),
            Json::Obj(vec![
                (
                    "centers".into(),
                    Json::Arr(
                        s.histogram
                            .centers()
                            .into_iter()
                            .map(Json::num_or_null)
                            .collect(),
                    ),
                ),
                (
                    "densities".into(),
                    Json::Arr(
                        s.histogram
                            .densities()
                            .into_iter()
                            .map(Json::num_or_null)
                            .collect(),
                    ),
                ),
                (
                    "total_weight".into(),
                    Json::num_or_null(s.histogram.total_weight()),
                ),
            ]),
        ),
        ("num_draws".into(), Json::Num(s.num_draws as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Arc<App> {
        App::new(Registry::from_benchmarks(), 16)
    }

    fn post(app: &Arc<App>, path: &str, body: &str) -> Response {
        let handler = app.handler();
        handler(&Request {
            method: "POST".into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        })
    }

    fn get(app: &Arc<App>, path: &str) -> Response {
        let handler = app.handler();
        handler(&Request {
            method: "GET".into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
        })
    }

    #[test]
    fn routes_answer_without_a_socket() {
        let app = app();
        let health = get(&app, "/healthz");
        assert_eq!(health.status, 200);
        let parsed = Json::parse(std::str::from_utf8(&health.body).unwrap()).unwrap();
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("ok"));
        let models = get(&app, "/v1/models");
        assert_eq!(models.status, 200);
        assert!(String::from_utf8_lossy(&models.body).contains("\"ex-1\""));
        assert_eq!(get(&app, "/nope").status, 404);
        assert_eq!(post(&app, "/healthz", "").status, 405);
        // Metrics recorded every one of those requests.
        assert_eq!(app.metrics.total_requests(), 4);
    }

    #[test]
    fn query_runs_and_caches() {
        let app = app();
        let body = r#"{"model":"ex-1","observations":[0.8],
                       "method":{"algorithm":"importance","particles":300},"seed":7}"#;
        let cold = post(&app, "/v1/query", body);
        assert_eq!(cold.status, 200, "{}", String::from_utf8_lossy(&cold.body));
        assert!(cold
            .headers
            .iter()
            .any(|(k, v)| k == "X-Cache" && v == "miss"));
        let warm = post(&app, "/v1/query", body);
        assert_eq!(warm.status, 200);
        assert!(warm
            .headers
            .iter()
            .any(|(k, v)| k == "X-Cache" && v == "hit"));
        assert_eq!(cold.body, warm.body);
        // Whitespace-only differences in the request reach the same line.
        assert_eq!(app.cache.len(), 1);
        let parsed = Json::parse(std::str::from_utf8(&cold.body).unwrap()).unwrap();
        assert_eq!(parsed.get("method").unwrap().as_str(), Some("IS"));
        let mean = parsed
            .get("summary")
            .unwrap()
            .get("mean")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(mean.is_finite());
    }

    #[test]
    fn thread_counts_share_a_cache_line() {
        let app = app();
        let one = r#"{"model":"ex-1","observations":[0.8],
                      "method":{"algorithm":"importance","particles":200},"seed":3,"threads":1}"#;
        let four = r#"{"model":"ex-1","observations":[0.8],
                       "method":{"algorithm":"importance","particles":200},"seed":3,"threads":4}"#;
        let cold = post(&app, "/v1/query", one);
        assert_eq!(cold.status, 200);
        let warm = post(&app, "/v1/query", four);
        assert!(warm
            .headers
            .iter()
            .any(|(k, v)| k == "X-Cache" && v == "hit"));
        assert_eq!(cold.body, warm.body);
    }

    #[test]
    fn block_sizes_share_a_cache_line_and_metrics_report_execution() {
        let app = app();
        let scalar = r#"{"model":"ex-1","observations":[0.8],
                         "method":{"algorithm":"importance","particles":200},"seed":3,"block":1}"#;
        let vector = r#"{"model":"ex-1","observations":[0.8],
                         "method":{"algorithm":"importance","particles":200},"seed":3,"block":256}"#;
        let cold = post(&app, "/v1/query", scalar);
        assert_eq!(cold.status, 200, "{}", String::from_utf8_lossy(&cold.body));
        let warm = post(&app, "/v1/query", vector);
        assert!(warm
            .headers
            .iter()
            .any(|(k, v)| k == "X-Cache" && v == "hit"));
        assert_eq!(cold.body, warm.body);
        // /metrics reports the active default block size and the measured
        // per-model execution rate (only the cache miss ran particles).
        let metrics = get(&app, "/metrics");
        assert_eq!(metrics.status, 200);
        let parsed = Json::parse(std::str::from_utf8(&metrics.body).unwrap()).unwrap();
        assert_eq!(
            parsed.get("execution").unwrap().get("block"),
            Some(&Json::Num(ppl_inference::DEFAULT_BLOCK as f64))
        );
        let per_model = parsed
            .get("registry")
            .unwrap()
            .get("per_model")
            .unwrap()
            .as_arr()
            .unwrap();
        let ex1 = per_model
            .iter()
            .find(|m| m.get("id").unwrap().as_str() == Some("ex-1"))
            .unwrap();
        let rate = ex1.get("particles_per_sec").unwrap().as_f64().unwrap();
        assert!(rate > 0.0, "rate {rate}");
    }

    #[test]
    fn invalid_requests_are_structured_400s() {
        let app = app();
        // Wrong carrier.
        let r = post(
            &app,
            "/v1/query",
            r#"{"model":"ex-1","observations":[true],
                "method":{"algorithm":"importance","particles":100}}"#,
        );
        assert_eq!(r.status, 400);
        let parsed = Json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(
            parsed.get("error").unwrap().get("code").unwrap().as_str(),
            Some("obs.carrier")
        );
        assert_eq!(
            parsed
                .get("error")
                .unwrap()
                .get("position")
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
        // Malformed JSON names the byte offset.
        let r = post(&app, "/v1/query", "{\"model\": }");
        assert_eq!(r.status, 400);
        let parsed = Json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(
            parsed.get("error").unwrap().get("code").unwrap().as_str(),
            Some("request.json")
        );
        assert_eq!(
            parsed.get("error").unwrap().get("offset").unwrap().as_f64(),
            Some(10.0)
        );
        // Unknown model is a 404.
        let r = post(
            &app,
            "/v1/query",
            r#"{"model":"nope","method":{"algorithm":"importance"}}"#,
        );
        assert_eq!(r.status, 404);
        // Degenerate method config is a 400 with the method code.
        let r = post(
            &app,
            "/v1/query",
            r#"{"model":"ex-1","observations":[0.8],
                "method":{"algorithm":"importance","particles":0}}"#,
        );
        assert_eq!(r.status, 400);
        assert!(String::from_utf8_lossy(&r.body).contains("method.invalid"));
    }

    #[test]
    fn fingerprint_is_injective_over_crafted_param_names() {
        // Under a naive `name:bits:pos,` encoding these two parameter
        // lists serialise identically: B's single name embeds A's
        // separators verbatim.  The length prefix keeps them distinct, so
        // B can never be served A's cached response.
        let bits1 = 1.0f64.to_bits();
        let a = vec![
            ParamSpec::unconstrained("m", 1.0),
            ParamSpec::unconstrained("m", 2.0),
        ];
        let b = vec![ParamSpec::unconstrained(format!("m:{bits1:016x}:0,m"), 2.0)];
        let request = |params: Vec<ParamSpec>| QueryRequest {
            observations: vec![Sample::Real(9.0), Sample::Real(9.0)],
            method: Method::Vi {
                params,
                config: ViConfig::default(),
                draw_particles: None,
            },
            seed: 1,
            threads: 1,
            block: 1,
            model_args: vec![],
            guide_args: vec![],
            sample_index: 0,
            cancel: CancelToken::none(),
        };
        assert_ne!(
            fingerprint("weight", &request(a)),
            fingerprint("weight", &request(b))
        );
    }

    #[test]
    fn oversized_work_and_batches_are_rejected() {
        let app = app();
        // 2^53 particles passes as_u64 but must hit the work limit, not a
        // worker thread.
        let r = post(
            &app,
            "/v1/query",
            r#"{"model":"ex-1","observations":[0.8],
                "method":{"algorithm":"importance","particles":9007199254740992}}"#,
        );
        assert_eq!(r.status, 400);
        assert!(String::from_utf8_lossy(&r.body).contains("request.limit"));
        // A VI config whose product overflows the limit is rejected too.
        let r = post(
            &app,
            "/v1/query",
            r#"{"model":"weight","observations":[9.0,9.0],
                "method":{"algorithm":"vi","iterations":9007199254740992,
                          "samples_per_iteration":9007199254740992}}"#,
        );
        assert_eq!(r.status, 400);
        assert!(String::from_utf8_lossy(&r.body).contains("request.limit"));
        // More observation sets than MAX_BATCH_ITEMS.
        let sets: Vec<String> = (0..=MAX_BATCH_ITEMS).map(|_| "[0.5]".to_string()).collect();
        let body = format!(
            r#"{{"model":"normal-normal","observation_sets":[{}],
                "method":{{"algorithm":"importance","particles":100}}}}"#,
            sets.join(",")
        );
        let r = post(&app, "/v1/batch", &body);
        assert_eq!(r.status, 400);
        assert!(String::from_utf8_lossy(&r.body).contains("request.limit"));
    }

    #[test]
    fn batch_matches_individual_queries_and_counts_hits() {
        let app = app();
        let q0 = r#"{"model":"normal-normal","observations":[0.5],
                     "method":{"algorithm":"importance","particles":200},"seed":11}"#;
        let solo = post(&app, "/v1/query", q0);
        assert_eq!(solo.status, 200);
        let batch = post(
            &app,
            "/v1/batch",
            r#"{"model":"normal-normal",
                "observation_sets":[[0.5],[1.5]],
                "seeds":[11,12],
                "method":{"algorithm":"importance","particles":200}}"#,
        );
        assert_eq!(
            batch.status,
            200,
            "{}",
            String::from_utf8_lossy(&batch.body)
        );
        // Item 0 was already cached by the solo query.
        assert!(batch
            .headers
            .iter()
            .any(|(k, v)| k == "X-Cache-Hits" && v == "1"));
        let parsed = Json::parse(std::str::from_utf8(&batch.body).unwrap()).unwrap();
        let results = parsed.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        // The batch result is byte-identical to the solo response.
        let solo_parsed = Json::parse(std::str::from_utf8(&solo.body).unwrap()).unwrap();
        assert_eq!(results[0], solo_parsed);
        // A bad item rejects the whole batch, naming the index.
        let bad = post(
            &app,
            "/v1/batch",
            r#"{"model":"normal-normal",
                "observation_sets":[[0.5],[true]],
                "method":{"algorithm":"importance","particles":200}}"#,
        );
        assert_eq!(bad.status, 400);
        let parsed = Json::parse(std::str::from_utf8(&bad.body).unwrap()).unwrap();
        assert_eq!(
            parsed.get("error").unwrap().get("index").unwrap().as_f64(),
            Some(1.0)
        );
    }
}
