//! The compiled-session registry: every servable model, built once.
//!
//! At boot the server walks `ppl_models`' benchmark registry, runs the
//! full pipeline on every expressible model–guide pair — parse, guide-type
//! inference, compatibility check, compilation to shared
//! `CompiledProgram`s — and keeps each resulting [`Session`] behind an
//! `Arc`.  Request handling therefore never parses or type-checks
//! anything: a query borrows the pre-compiled session, and all its
//! particles (across all worker threads) execute the same immutable
//! program tables, exactly as PR 2's zero-copy core intends.
//!
//! Each entry also carries the *rendered protocols* (latent and
//! observation) so `GET /v1/models` can tell clients what a request must
//! look like before they try one — the paper's static-certification
//! discipline, published as API metadata.

use guide_ppl::Session;
use std::collections::HashMap;
use std::sync::Arc;

/// A variational parameter default for a registry model's guide (mirrors
/// `ppl_models::GuideParam`, owned).
#[derive(Debug, Clone)]
pub struct ParamDefault {
    /// Parameter name.
    pub name: String,
    /// Initial value.
    pub init: f64,
    /// Whether the parameter is constrained positive.
    pub positive: bool,
}

/// One servable model: a compiled session plus the metadata the API
/// publishes about it.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// Registry name (e.g. `"ex-1"`).
    pub name: String,
    /// One-line description from the benchmark registry.
    pub description: String,
    /// The compiled, type-checked session.
    pub session: Arc<Session>,
    /// The latent protocol, rendered.
    pub latent_protocol: String,
    /// The observation protocol, rendered; `None` when the model has no
    /// observation channel.
    pub observation_protocol: Option<String>,
    /// The benchmark's reference observation count (a hint for clients;
    /// branchy protocols admit other counts too).
    pub default_observation_count: usize,
    /// The algorithm the paper's evaluation uses for this model.
    pub default_method: &'static str,
    /// Default guide arguments (the registry's initial variational
    /// parameter values), used when a request supplies none.
    pub guide_param_defaults: Vec<ParamDefault>,
}

/// The boot-time registry of compiled sessions, indexed by model name.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<ModelEntry>,
    by_name: HashMap<String, usize>,
}

impl Registry {
    /// Builds sessions for every expressible benchmark in `ppl_models`.
    ///
    /// Benchmarks that are registered but not expressible (`dp`) are
    /// skipped; an expressible benchmark whose pipeline fails would be a
    /// bug in the model library, so it panics rather than silently serving
    /// a partial catalogue.
    pub fn from_benchmarks() -> Registry {
        let mut registry = Registry::default();
        for b in ppl_models::all_benchmarks() {
            if !b.expressible {
                continue;
            }
            let session = Session::from_benchmark(b.name)
                .unwrap_or_else(|e| panic!("registry model '{}' failed the pipeline: {e}", b.name));
            registry.push(ModelEntry {
                name: b.name.to_string(),
                description: b.description.to_string(),
                latent_protocol: session.latent_protocol(),
                observation_protocol: session.observation_protocol(),
                default_observation_count: b.observations.len(),
                default_method: b.inference.abbreviation(),
                guide_param_defaults: b
                    .guide_params
                    .iter()
                    .map(|p| ParamDefault {
                        name: p.name.to_string(),
                        init: p.init,
                        positive: p.positive,
                    })
                    .collect(),
                session: Arc::new(session),
            });
        }
        registry
    }

    /// Adds an entry (later entries shadow earlier ones by name).
    pub fn push(&mut self, entry: ModelEntry) {
        self.by_name.insert(entry.name.clone(), self.entries.len());
        self.entries.push(entry);
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.by_name.get(name).map(|&i| &self.entries[i])
    }

    /// All entries, in registry order.
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// Number of servable models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_compiles_every_expressible_benchmark_once() {
        let registry = Registry::from_benchmarks();
        assert!(registry.len() >= 15, "{} models", registry.len());
        let ex1 = registry.get("ex-1").expect("ex-1 registered");
        assert!(!ex1.latent_protocol.is_empty());
        assert!(ex1.observation_protocol.is_some());
        assert_eq!(ex1.default_method, "IS");
        assert_eq!(ex1.default_observation_count, 1);
        // The inexpressible benchmark is not served.
        assert!(registry.get("dp").is_none());
        assert!(registry.get("unknown").is_none());
        // `weight` carries VI parameter defaults for argument-less requests.
        let weight = registry.get("weight").expect("weight registered");
        assert_eq!(weight.guide_param_defaults.len(), 2);
        assert_eq!(weight.guide_param_defaults[0].name, "mu");
    }
}
