//! **guide-ppl** — a coroutine-based probabilistic programming language with
//! guide types, reproducing *Sound Probabilistic Inference via Guide Types*
//! (Wang, Hoffmann, Reps; PLDI 2021).
//!
//! This facade crate wires the subsystem crates into an end-to-end
//! pipeline:
//!
//! 1. parse model and guide programs ([`ppl_syntax`]);
//! 2. infer **guide types** and check model–guide compatibility, which
//!    certifies absolute continuity ([`ppl_types`]);
//! 3. run Bayesian inference (importance sampling, MCMC, variational
//!    inference) by executing the two programs as communicating coroutines
//!    ([`ppl_runtime`], [`ppl_inference`]);
//! 4. optionally compile the pair to Pyro source text ([`ppl_compiler`]).
//!
//! # Quickstart
//!
//! The front door is the **query layer**: build a [`Session`] once, then
//! ask it validated questions.  [`Session::query`] checks the observations
//! against the model's *inferred observation protocol* before anything
//! runs, [`Method`] picks the algorithm, and every engine's result
//! implements the common [`Posterior`] interface.
//!
//! ```
//! use guide_ppl::{Method, Posterior, Session};
//! use ppl_dist::Sample;
//!
//! let session = Session::from_sources(
//!     "proc Model() : real consume latent provide obs {
//!        let x <- sample recv latent (Normal(0.0, 1.0));
//!        let _ <- sample send obs (Normal(x, 1.0));
//!        return x }",
//!     "Model",
//!     "proc Guide() provide latent {
//!        let x <- sample send latent (Normal(0.0, 1.5));
//!        return () }",
//!     "Guide",
//! )?;
//! assert!(session.compatibility().compatible);
//! let posterior = session
//!     .query()
//!     .observe(vec![Sample::Real(1.0)])
//!     .seed(7)
//!     .run(&Method::Importance { particles: 2_000 })?;
//! let mean = posterior.mean_of_sample(0).unwrap();
//! assert!((mean - 0.5).abs() < 0.2);
//! // The same query shape serves whole batches of observation sets:
//! let queries: Vec<_> = (0..4)
//!     .map(|i| {
//!         session
//!             .query()
//!             .observe(vec![Sample::Real(i as f64 * 0.5)])
//!             .seed(i as u64)
//!             .build()
//!     })
//!     .collect::<Result<_, _>>()?;
//! let posteriors = session.run_batch(&queries, &Method::Importance { particles: 500 })?;
//! assert_eq!(posteriors.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod query;

use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;
use ppl_inference::{
    ImportanceResult, McmcResult, ParamSpec, VariationalInference, ViConfig, ViResult,
};
use ppl_runtime::{JointExecutor, JointSpec, RuntimeError};
use ppl_syntax::{parse_program, Ident, ParseError, Program};
use ppl_types::{check_model_guide, infer_program, Compatibility, TypeEnv, TypeError};
use std::fmt;

pub use ppl_compiler::{compile_pair, CompiledPair, Style};
pub use ppl_dist as dist;
pub use ppl_inference as inference;
pub use ppl_inference::{Draw, Posterior, PosteriorSummary, Quantiles, ViPosterior};
pub use ppl_models as models;
pub use ppl_runtime as runtime;
pub use ppl_semantics as semantics;
pub use ppl_syntax as syntax;
pub use ppl_tracetypes as tracetypes;
pub use ppl_types as types;
pub use query::{
    sample_to_artifact_obs, Method, PosteriorResult, Query, QueryBuilder, QueryError, ViFit,
};

/// Errors produced by the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The model or guide source failed to parse.
    Parse(ParseError),
    /// The model or guide failed base-type or guide-type checking.
    Type(TypeError),
    /// The model and guide are well-typed but their latent-channel
    /// protocols differ, so absolute continuity is not certified.
    Incompatible {
        /// The model's latent protocol.
        model_latent: String,
        /// The guide's latent protocol.
        guide_latent: String,
    },
    /// A runtime failure during inference.
    Runtime(RuntimeError),
    /// A query was rejected by up-front validation (see [`QueryError`]).
    Query(QueryError),
    /// [`Session::from_benchmark`] was asked for a name the registry does
    /// not contain.
    UnknownBenchmark(String),
    /// [`Session::from_benchmark`] was asked for a registered benchmark
    /// that is not expressible in the coroutine-based PPL.
    NotExpressible(String),
}

impl SessionError {
    /// Stable machine-readable code identifying the error class.
    ///
    /// Parse and type errors forward the underlying
    /// [`ParseError::code`](ppl_syntax::parser::ParseError::code) /
    /// [`TypeError::code`](ppl_types::TypeError::code); the remaining
    /// variants have fixed codes. These strings are part of the `ppl-serve`
    /// wire format and never change meaning once shipped.
    pub fn code(&self) -> &'static str {
        match self {
            SessionError::Parse(e) => e.code(),
            SessionError::Type(e) => e.code(),
            SessionError::Incompatible { .. } => ppl_types::types_error_code::GUIDE_MISMATCH,
            SessionError::Runtime(RuntimeError::DeadlineExceeded) => "query.deadline_exceeded",
            SessionError::Runtime(RuntimeError::Cancelled) => "query.cancelled",
            SessionError::Runtime(_) => "runtime.error",
            SessionError::Query(e) => e.code(),
            SessionError::UnknownBenchmark(_) => "benchmark.unknown",
            SessionError::NotExpressible(_) => "benchmark.not_expressible",
        }
    }

    /// 1-based (line, column) source position of the error, when the
    /// offending program came from source text.
    pub fn position(&self) -> Option<(usize, usize)> {
        match self {
            SessionError::Parse(e) => Some(e.position()),
            SessionError::Type(e) => e.position(),
            _ => None,
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Type(e) => write!(f, "{e}"),
            SessionError::Incompatible {
                model_latent,
                guide_latent,
            } => write!(
                f,
                "model and guide are incompatible: model latent protocol {model_latent}, guide latent protocol {guide_latent}"
            ),
            SessionError::Runtime(e) => write!(f, "{e}"),
            SessionError::Query(e) => write!(f, "{e}"),
            SessionError::UnknownBenchmark(name) => write!(f, "unknown benchmark '{name}'"),
            SessionError::NotExpressible(name) => write!(
                f,
                "benchmark '{name}' is not expressible in the coroutine-based PPL"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<TypeError> for SessionError {
    fn from(e: TypeError) -> Self {
        SessionError::Type(e)
    }
}

impl From<RuntimeError> for SessionError {
    fn from(e: RuntimeError) -> Self {
        SessionError::Runtime(e)
    }
}

impl From<QueryError> for SessionError {
    fn from(e: QueryError) -> Self {
        SessionError::Query(e)
    }
}

/// A type-checked model–guide pair, ready for inference.
///
/// The session compiles both programs once into shared
/// [`CompiledProgram`](ppl_runtime::CompiledProgram) form; every executor it
/// hands out shares those compilations, so repeated inference runs (and all
/// their particles, across all threads) execute the same immutable program
/// tables.
#[derive(Debug, Clone)]
pub struct Session {
    model: Program,
    guide: Program,
    pub(crate) model_compiled: std::sync::Arc<ppl_runtime::CompiledProgram>,
    pub(crate) guide_compiled: std::sync::Arc<ppl_runtime::CompiledProgram>,
    pub(crate) model_proc: Ident,
    pub(crate) guide_proc: Ident,
    pub(crate) model_env: TypeEnv,
    guide_env: TypeEnv,
    pub(crate) compatibility: Compatibility,
}

impl Session {
    /// Parses, type-checks, and compatibility-checks a model–guide pair.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if parsing or type checking fails, or if
    /// the two programs do not share the latent protocol (the absolute
    /// continuity certificate of Theorem 5.2).
    pub fn from_sources(
        model_src: &str,
        model_proc: &str,
        guide_src: &str,
        guide_proc: &str,
    ) -> Result<Session, SessionError> {
        let model = parse_program(model_src)?;
        let guide = parse_program(guide_src)?;
        Session::from_programs(model, model_proc, guide, guide_proc)
    }

    /// Builds a session from already-parsed programs.
    ///
    /// # Errors
    ///
    /// Same as [`Session::from_sources`], minus parsing.
    pub fn from_programs(
        model: Program,
        model_proc: &str,
        guide: Program,
        guide_proc: &str,
    ) -> Result<Session, SessionError> {
        let model_proc: Ident = model_proc.into();
        let guide_proc: Ident = guide_proc.into();
        let model_env = infer_program(&model)?;
        let guide_env = infer_program(&guide)?;
        let compatibility = check_model_guide(&model_env, &model_proc, &guide_env, &guide_proc)?;
        if !compatibility.compatible {
            return Err(SessionError::Incompatible {
                model_latent: render_protocol(&compatibility.model_latent, &model_env),
                guide_latent: render_protocol(&compatibility.guide_latent, &guide_env),
            });
        }
        let model_compiled = ppl_runtime::CompiledProgram::compile_shared(&model);
        let guide_compiled = ppl_runtime::CompiledProgram::compile_shared(&guide);
        Ok(Session {
            model,
            guide,
            model_compiled,
            guide_compiled,
            model_proc,
            guide_proc,
            model_env,
            guide_env,
            compatibility,
        })
    }

    /// Builds a session from a registered benchmark model.
    ///
    /// # Errors
    ///
    /// Returns an error when the benchmark is unknown or not expressible, or
    /// if (unexpectedly) its sources fail the pipeline.
    pub fn from_benchmark(name: &str) -> Result<Session, SessionError> {
        let b = ppl_models::benchmark(name)
            .ok_or_else(|| SessionError::UnknownBenchmark(name.to_string()))?;
        if !b.expressible {
            return Err(SessionError::NotExpressible(name.to_string()));
        }
        Session::from_sources(b.model_src, b.model_proc, b.guide_src, b.guide_proc)
    }

    /// The model program.
    pub fn model(&self) -> &Program {
        &self.model
    }

    /// The guide program.
    pub fn guide(&self) -> &Program {
        &self.guide
    }

    /// The guide-type inference result for the model.
    pub fn model_types(&self) -> &TypeEnv {
        &self.model_env
    }

    /// The guide-type inference result for the guide.
    pub fn guide_types(&self) -> &TypeEnv {
        &self.guide_env
    }

    /// The model–guide compatibility verdict.
    pub fn compatibility(&self) -> &Compatibility {
        &self.compatibility
    }

    /// The inferred latent protocol, rendered as text.  Top-level operator
    /// applications are unfolded once so that non-recursive protocols read
    /// directly as message sequences (e.g. `preal /\ (1 & ureal /\ 1)`).
    pub fn latent_protocol(&self) -> String {
        render_protocol(&self.compatibility.model_latent, &self.model_env)
    }

    /// The inferred observation protocol, rendered as text — `None` when
    /// the model provides no observation channel.  This is the protocol
    /// [`Session::query`] validates observations against, and the serving
    /// layer publishes it per model so clients can shape requests without
    /// trial and error.
    pub fn observation_protocol(&self) -> Option<String> {
        self.compatibility
            .model_obs
            .as_ref()
            .map(|p| render_protocol(p, &self.model_env))
    }

    /// Builds a joint executor conditioned on the given observations.
    ///
    /// Executors share the session's compiled programs — building one per
    /// observation set costs three `Arc` clones, not a recompilation.
    pub fn executor(&self, observations: Vec<Sample>) -> JointExecutor {
        JointExecutor::from_compiled(
            std::sync::Arc::clone(&self.model_compiled),
            std::sync::Arc::clone(&self.guide_compiled),
            observations,
        )
    }

    /// The default joint spec: no arguments, channel names resolved from
    /// the model procedure's header.  Session construction guarantees the
    /// model exists and consumes a channel; a model without an observation
    /// channel gets the conventional `obs` name (never matched at
    /// runtime).
    pub fn spec(&self) -> JointSpec {
        let meta = self
            .model_compiled
            .proc_named(&self.model_proc)
            .expect("session construction verified the model procedure");
        let latent_chan = meta
            .consumes
            .expect("session construction verified the model consumes a channel");
        let obs_chan = meta.provides.unwrap_or_else(|| "obs".into());
        JointSpec {
            model_proc: self.model_proc,
            model_args: Vec::new(),
            guide_proc: self.guide_proc,
            guide_args: Vec::new(),
            latent_chan,
            obs_chan,
        }
    }

    /// Runs importance sampling with `num_particles` particles.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the joint executor.
    #[deprecated(
        note = "use `session.query().observe(..).run(&Method::Importance { .. })`, which validates observations up front"
    )]
    pub fn importance_sampling(
        &self,
        observations: Vec<Sample>,
        num_particles: usize,
        rng: &mut Pcg32,
    ) -> Result<ImportanceResult, SessionError> {
        let executor = self.executor(observations);
        let method = Method::Importance {
            particles: num_particles,
        };
        match query::run_with_rng(&executor, &self.spec(), &method, 1, rng)? {
            PosteriorResult::Importance(r) => Ok(r),
            _ => unreachable!("importance sampling produces an importance posterior"),
        }
    }

    /// Runs independence Metropolis–Hastings.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the joint executor.
    #[deprecated(
        note = "use `session.query().observe(..).run(&Method::Mh { .. })`, which validates observations up front"
    )]
    pub fn metropolis_hastings(
        &self,
        observations: Vec<Sample>,
        iterations: usize,
        burn_in: usize,
        rng: &mut Pcg32,
    ) -> Result<McmcResult, SessionError> {
        let executor = self.executor(observations);
        let method = Method::Mh {
            iterations,
            burn_in,
        };
        match query::run_with_rng(&executor, &self.spec(), &method, 1, rng)? {
            PosteriorResult::Mcmc(r) => Ok(r),
            _ => unreachable!("MH produces an MCMC posterior"),
        }
    }

    /// Runs variational inference over the given parameters, returning the
    /// bare fit (no posterior draws).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the joint executor.
    #[deprecated(
        note = "use `session.query().observe(..).run(&Method::Vi { .. })`, which validates observations up front and returns a `Posterior`"
    )]
    pub fn variational_inference(
        &self,
        observations: Vec<Sample>,
        params: &[ParamSpec],
        config: ViConfig,
        rng: &mut Pcg32,
    ) -> Result<ViResult, SessionError> {
        let executor = self.executor(observations);
        Ok(VariationalInference::new(config).run(&executor, &self.spec(), params, rng)?)
    }

    /// Compiles the pair to Pyro source text.
    pub fn compile_to_pyro(&self, style: Style) -> CompiledPair {
        compile_pair(
            &self.model,
            self.model_proc.as_str(),
            &self.guide,
            self.guide_proc.as_str(),
            style,
        )
    }
}

/// Renders a protocol for human consumption: while the head of the type is
/// a defined operator application, unfold it (guarding against recursive
/// operators — detected by a structural occurs-check on the unfolded body —
/// which are left folded so the rendering stays finite).
pub(crate) fn render_protocol(ty: &ppl_types::GuideType, env: &TypeEnv) -> String {
    let mut current = ty.clone();
    for _ in 0..4 {
        match &current {
            ppl_types::GuideType::App(op, arg) => {
                match env.defs.unfold(op, arg) {
                    // Keep recursive operators folded so the rendering stays
                    // finite and readable.
                    Some(body) if !body.mentions_op(op) => {
                        current = body;
                    }
                    _ => break,
                }
            }
            _ => break,
        }
    }
    current.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = "proc Model() : real consume latent provide obs {
        let x <- sample recv latent (Normal(0.0, 1.0));
        let _ <- sample send obs (Normal(x, 1.0));
        return x }";
    const GUIDE: &str = "proc Guide() provide latent {
        let x <- sample send latent (Normal(0.0, 1.5));
        return () }";
    const BAD_GUIDE: &str = "proc Guide() provide latent {
        let x <- sample send latent (Unif);
        return () }";

    #[test]
    fn session_pipeline_accepts_compatible_pairs() {
        let s = Session::from_sources(MODEL, "Model", GUIDE, "Guide").unwrap();
        assert!(s.compatibility().compatible);
        assert!(s.latent_protocol().contains("real"));
        assert!(s.model().proc_named("Model").is_some());
        assert!(s.guide().proc_named("Guide").is_some());
        assert!(s.model_types().consumed_protocol(&"Model".into()).is_some());
        assert!(s.guide_types().provided_protocol(&"Guide".into()).is_some());
        let compiled = s.compile_to_pyro(Style::Coroutine);
        assert!(compiled.generated_loc > 0);
    }

    #[test]
    fn session_pipeline_rejects_incompatible_pairs() {
        let err = Session::from_sources(MODEL, "Model", BAD_GUIDE, "Guide").unwrap_err();
        match err {
            SessionError::Incompatible {
                model_latent,
                guide_latent,
            } => {
                assert!(model_latent.contains("real"));
                assert!(guide_latent.contains("ureal"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn session_reports_parse_and_type_errors() {
        assert!(matches!(
            Session::from_sources("proc (", "P", GUIDE, "Guide"),
            Err(SessionError::Parse(_))
        ));
        let ill_typed =
            "proc Model() consume latent { let x <- sample recv latent (Ber(2.0)); return () }";
        assert!(matches!(
            Session::from_sources(ill_typed, "Model", GUIDE, "Guide"),
            Err(SessionError::Type(_))
        ));
        let e = SessionError::Parse(ParseError {
            message: "x".into(),
            line: 1,
            col: 1,
            code: ppl_syntax::parser::code::UNEXPECTED_TOKEN,
        });
        assert!(e.to_string().contains("parse error"));
        assert_eq!(e.code(), "parse.unexpected_token");
        assert_eq!(e.position(), Some((1, 1)));
    }

    #[test]
    fn session_from_benchmark() {
        let s = Session::from_benchmark("ex-1").unwrap();
        assert!(s.compatibility().compatible);
        // The registry's only inexpressible benchmark and unknown names get
        // dedicated diagnostics, not fake type errors.
        let e = Session::from_benchmark("dp").unwrap_err();
        assert_eq!(e, SessionError::NotExpressible("dp".into()));
        assert!(e.to_string().contains("not expressible"));
        let e = Session::from_benchmark("unknown").unwrap_err();
        assert_eq!(e, SessionError::UnknownBenchmark("unknown".into()));
        assert!(e.to_string().contains("unknown benchmark"));
    }

    // The shortcut methods are deprecated in favour of the query layer but
    // must keep working (and agreeing with it) until removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_session_shortcuts_still_work() {
        let s = Session::from_sources(MODEL, "Model", GUIDE, "Guide").unwrap();
        let mut rng = Pcg32::seed_from_u64(5);
        let is = s
            .importance_sampling(vec![Sample::Real(1.0)], 3_000, &mut rng)
            .unwrap();
        assert!((is.posterior_mean_of_sample(0).unwrap() - 0.5).abs() < 0.15);
        let mh = s
            .metropolis_hastings(vec![Sample::Real(1.0)], 2_000, 200, &mut rng)
            .unwrap();
        assert!((mh.posterior_mean_of_sample(0).unwrap() - 0.5).abs() < 0.2);
        // The wrapper and the query layer share one code path: with equal
        // seeds their results are bit-identical.
        let mut rng = Pcg32::seed_from_u64(9);
        let wrapped = s
            .importance_sampling(vec![Sample::Real(1.0)], 500, &mut rng)
            .unwrap();
        let queried = s
            .query()
            .observe(vec![Sample::Real(1.0)])
            .seed(9)
            .run(&Method::Importance { particles: 500 })
            .unwrap();
        assert_eq!(
            wrapped.log_evidence.to_bits(),
            queried.as_importance().unwrap().log_evidence.to_bits()
        );
    }

    #[test]
    fn render_protocol_unfolds_with_a_structural_occurs_check() {
        use ppl_types::{GuideType, TypeDef};
        let mut env = TypeEnv::default();
        // Recursive operator: stays folded.
        env.defs.insert(TypeDef {
            name: "R".into(),
            param: "X".into(),
            body: GuideType::send_val(
                ppl_syntax::BaseType::Real,
                GuideType::app("R", GuideType::Var("X".into())),
            ),
        });
        assert_eq!(
            render_protocol(&GuideType::app("R", GuideType::End), &env),
            "R[1]"
        );
        // Non-recursive operator whose body mentions an operator with "T["
        // in its *name suffix* ("GT"): a textual `contains("T[")` guard
        // would wrongly keep T folded; the structural check unfolds it.
        env.defs.insert(TypeDef {
            name: "T".into(),
            param: "X".into(),
            body: GuideType::send_val(
                ppl_syntax::BaseType::Real,
                GuideType::app("GT", GuideType::Var("X".into())),
            ),
        });
        env.defs.insert(TypeDef {
            name: "GT".into(),
            param: "X".into(),
            body: GuideType::Var("X".into()),
        });
        assert_eq!(
            render_protocol(&GuideType::app("T", GuideType::End), &env),
            "real /\\ GT[1]"
        );
    }
}
