//! Leveled structured logging: one JSON object per line on stderr.
//!
//! Every line carries a monotonic `ts` (seconds since process start, so
//! log output is deterministic modulo timing and never consults the wall
//! clock), a `level`, a machine-grepable `code`, a human `msg`, typed
//! extra fields, and — when the emitting thread has an active trace —
//! the request's `trace_id`.
//!
//! Emission is rate-limited per (level, code): at most
//! [`MAX_PER_WINDOW`] lines per second per distinct code, with a
//! `suppressed` count carried on the first line of the next window so
//! dropped volume stays visible.  An overload storm therefore costs a
//! bounded number of stderr writes, not one per shed request.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum lines emitted per (level, code) per one-second window.
pub const MAX_PER_WINDOW: u32 = 50;

/// Log severity, in decreasing order of urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process cannot proceed with what it was asked to do.
    Error = 0,
    /// Something degraded but handled (sheds, deadline passes).
    Warn = 1,
    /// Lifecycle transitions worth one line each (boot, drain, stop).
    Info = 2,
    /// Per-request and diagnostic detail.
    Debug = 3,
}

impl Level {
    /// Wire name of the level.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a level name (`error|warn|info|debug`), case-sensitive.
    pub fn parse(name: &str) -> Option<Level> {
        match name {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// A typed value for a structured log field.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string field (JSON-escaped on emission).
    Str(String),
    /// A float field; non-finite values are emitted as `null`.
    Num(f64),
    /// An unsigned integer field.
    Uint(u64),
    /// A boolean field.
    Bool(bool),
}

impl Value {
    /// Build a string field.
    pub fn s(value: impl Into<String>) -> Value {
        Value::Str(value.into())
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Value {
        Value::Str(value.to_string())
    }
}

impl From<String> for Value {
    fn from(value: String) -> Value {
        Value::Str(value)
    }
}

impl From<f64> for Value {
    fn from(value: f64) -> Value {
        Value::Num(value)
    }
}

impl From<u64> for Value {
    fn from(value: u64) -> Value {
        Value::Uint(value)
    }
}

impl From<usize> for Value {
    fn from(value: usize) -> Value {
        Value::Uint(value as u64)
    }
}

impl From<bool> for Value {
    fn from(value: bool) -> Value {
        Value::Bool(value)
    }
}

static THRESHOLD: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the global emission threshold: lines above this severity (e.g.
/// `debug` when the threshold is `info`) are dropped before formatting.
pub fn set_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// Current emission threshold.
pub fn level() -> Level {
    match THRESHOLD.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether a line at `level` would currently be emitted (threshold
/// check only; the rate limiter may still drop it).
pub fn enabled(level: Level) -> bool {
    (level as u8) <= THRESHOLD.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Seconds since the process logging epoch (monotonic clock).
pub fn uptime_secs() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// One rate-limiter window for a (level, code) pair.
struct Gate {
    level: u8,
    code_hash: u64,
    window_start: Instant,
    emitted: u32,
    suppressed: u64,
}

static GATES: Mutex<Vec<Gate>> = Mutex::new(Vec::new());

/// Rate-limit decision: whether to emit, and how many lines were
/// suppressed since the last emission for this (level, code).
fn admit(level: Level, code: &str) -> Option<u64> {
    let now = Instant::now();
    let code_hash = crate::trace::request_hash(&[code.as_bytes()]);
    let mut gates = GATES.lock().unwrap_or_else(|e| e.into_inner());
    let gate = match gates
        .iter_mut()
        .find(|g| g.level == level as u8 && g.code_hash == code_hash)
    {
        Some(gate) => gate,
        None => {
            gates.push(Gate {
                level: level as u8,
                code_hash,
                window_start: now,
                emitted: 0,
                suppressed: 0,
            });
            gates.last_mut().expect("just pushed")
        }
    };
    if now.duration_since(gate.window_start).as_secs() >= 1 {
        gate.window_start = now;
        gate.emitted = 0;
    }
    if gate.emitted < MAX_PER_WINDOW {
        gate.emitted += 1;
        Some(std::mem::take(&mut gate.suppressed))
    } else {
        gate.suppressed += 1;
        None
    }
}

/// Escape a string into a JSON string literal (without quotes).
fn escape_into(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_value(out: &mut String, value: &Value) {
    match value {
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Value::Num(n) if n.is_finite() => out.push_str(&format!("{n}")),
        Value::Num(_) => out.push_str("null"),
        Value::Uint(n) => out.push_str(&format!("{n}")),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Emit one structured line at `level` with a machine code, a human
/// message, and typed extra fields.  Drops the line if the threshold or
/// the per-(level, code) rate limiter says so.
pub fn emit(level: Level, code: &str, msg: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let Some(suppressed) = admit(level, code) else {
        return;
    };
    let mut line = String::with_capacity(128);
    line.push_str("{\"ts\":");
    line.push_str(&format!("{:.6}", uptime_secs()));
    line.push_str(",\"level\":\"");
    line.push_str(level.as_str());
    line.push_str("\",\"code\":\"");
    escape_into(&mut line, code);
    line.push_str("\",\"msg\":\"");
    escape_into(&mut line, msg);
    line.push('"');
    if let Some(trace_id) = crate::trace::current_trace_id() {
        line.push_str(",\"trace_id\":\"");
        escape_into(&mut line, &trace_id);
        line.push('"');
    }
    if suppressed > 0 {
        line.push_str(&format!(",\"suppressed\":{suppressed}"));
    }
    for (key, value) in fields {
        line.push_str(",\"");
        escape_into(&mut line, key);
        line.push_str("\":");
        push_value(&mut line, value);
    }
    line.push('}');
    line.push('\n');
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(line.as_bytes());
}

/// Emit at [`Level::Error`].
pub fn error(code: &str, msg: &str, fields: &[(&str, Value)]) {
    emit(Level::Error, code, msg, fields);
}

/// Emit at [`Level::Warn`].
pub fn warn(code: &str, msg: &str, fields: &[(&str, Value)]) {
    emit(Level::Warn, code, msg, fields);
}

/// Emit at [`Level::Info`].
pub fn info(code: &str, msg: &str, fields: &[(&str, Value)]) {
    emit(Level::Info, code, msg, fields);
}

/// Emit at [`Level::Debug`].
pub fn debug(code: &str, msg: &str, fields: &[(&str, Value)]) {
    emit(Level::Debug, code, msg, fields);
}

/// Format one line exactly as [`emit`] would, without threshold or rate
/// checks and without writing it.  Exposed for tests that assert the
/// line schema.
pub fn format_line(level: Level, code: &str, msg: &str, fields: &[(&str, Value)]) -> String {
    let mut line = String::with_capacity(128);
    line.push_str("{\"ts\":");
    line.push_str(&format!("{:.6}", uptime_secs()));
    line.push_str(",\"level\":\"");
    line.push_str(level.as_str());
    line.push_str("\",\"code\":\"");
    escape_into(&mut line, code);
    line.push_str("\",\"msg\":\"");
    escape_into(&mut line, msg);
    line.push('"');
    for (key, value) in fields {
        line.push_str(",\"");
        escape_into(&mut line, key);
        line.push_str("\":");
        push_value(&mut line, value);
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_round_trips() {
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("trace"), None);
    }

    #[test]
    fn threshold_gates_levels() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Info);
    }

    #[test]
    fn formatted_line_is_json_with_required_fields() {
        let line = format_line(
            Level::Info,
            "server.boot",
            "it \"works\"\n",
            &[
                ("workers", Value::from(4u64)),
                ("addr", Value::s("0.0.0.0:9000")),
                ("ratio", Value::from(0.5)),
                ("nan", Value::Num(f64::NAN)),
                ("draining", Value::from(false)),
            ],
        );
        assert!(line.starts_with("{\"ts\":"));
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"code\":\"server.boot\""));
        assert!(line.contains("\"msg\":\"it \\\"works\\\"\\n\""));
        assert!(line.contains("\"workers\":4"));
        assert!(line.contains("\"ratio\":0.5"));
        assert!(line.contains("\"nan\":null"));
        assert!(line.contains("\"draining\":false"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\u{0}'));
    }

    #[test]
    fn rate_limiter_suppresses_and_reports() {
        // Use a unique code so other tests' emissions don't share the gate.
        let code = "test.unique.rate.limit.gate";
        let mut emitted = 0;
        let mut first_suppressed_report = None;
        for _ in 0..(MAX_PER_WINDOW + 25) {
            if let Some(suppressed) = admit(Level::Debug, code) {
                emitted += 1;
                if suppressed > 0 {
                    first_suppressed_report = Some(suppressed);
                }
            }
        }
        assert_eq!(emitted, MAX_PER_WINDOW, "window caps emissions");
        assert!(
            first_suppressed_report.is_none(),
            "same window: no report yet"
        );
        // Force the window to roll over and confirm the suppressed count
        // is reported on the next admitted line.
        {
            let mut gates = GATES.lock().unwrap_or_else(|e| e.into_inner());
            let hash = crate::trace::request_hash(&[code.as_bytes()]);
            let gate = gates
                .iter_mut()
                .find(|g| g.level == Level::Debug as u8 && g.code_hash == hash)
                .expect("gate exists");
            gate.window_start = Instant::now() - std::time::Duration::from_secs(2);
        }
        let suppressed = admit(Level::Debug, code).expect("new window admits");
        assert_eq!(suppressed, 25, "dropped volume reported, not lost");
    }
}
