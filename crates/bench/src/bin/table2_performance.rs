//! Regenerates **Table 2** of the paper: per selected benchmark, the
//! inference algorithm, type-inference + code-generation time (CG),
//! generated lines of code (GLOC), inference time on the compiled/coroutine
//! path (GI), handwritten lines of code (HLOC), and inference time on the
//! handwritten path (HI).
//!
//! Run with `cargo run -p ppl-bench --bin table2_performance --release`.

use ppl_bench::{table2_rows, Table2Config};

fn main() {
    let config = Table2Config::default();
    println!(
        "Table 2: performance statistics ({} IS particles, {} VI iterations x {} samples)",
        config.is_particles, config.vi_iterations, config.vi_samples_per_iteration
    );
    println!(
        "{:<11} {:>3} {:>9} {:>6} {:>9} {:>6} {:>9} {:>9}",
        "Program", "BI", "CG (ms)", "GLOC", "GI (s)", "HLOC", "HI (s)", "GI/HI"
    );
    println!("{}", "-".repeat(72));
    let rows = table2_rows(&config);
    for r in &rows {
        let gi = r.coroutine_inference_time.as_secs_f64();
        let hi = r.handwritten_inference_time.as_secs_f64();
        println!(
            "{:<11} {:>3} {:>9.2} {:>6} {:>9.2} {:>6} {:>9.2} {:>9.2}",
            r.name,
            r.algorithm,
            r.codegen_time.as_secs_f64() * 1e3,
            r.generated_loc,
            gi,
            r.handwritten_loc,
            hi,
            gi / hi
        );
    }
    println!("{}", "-".repeat(72));
    println!("estimate agreement (coroutine vs handwritten):");
    for r in &rows {
        println!(
            "  {:<11} {:>10.4} vs {:>10.4}",
            r.name, r.coroutine_estimate, r.handwritten_estimate
        );
    }
}
