//! Edge cases of the interned-symbol identifier representation.
//!
//! Identifiers are `Copy` `u32` handles into a process-wide string table
//! (`ppl_syntax::intern`), and the whole execution stack — environments,
//! coroutine suspensions, compiled programs — compares them by id.  These
//! tests pin the places where an id-based representation could plausibly go
//! wrong: shadowed binders (equal symbols at different scope depths),
//! distinct procedures declaring *same-named* channels, and channel names
//! that collide with the conventional `latent`/`obs` spellings the joint
//! spec defaults to.

use guide_ppl::runtime::{JointExecutor, JointSpec, LatentSource};
use ppl_dist::rng::Pcg32;
use ppl_dist::{Distribution, Sample};
use ppl_syntax::intern::{intern, Sym};
use ppl_syntax::parse_program;
use ppl_syntax::Ident;

#[test]
fn idents_intern_to_stable_copy_symbols() {
    let a: Ident = "latent".into();
    let b = Ident::new(String::from("latent"));
    assert_eq!(a, b, "same spelling must intern to the same symbol");
    assert_eq!(a.sym(), b.sym());
    assert_eq!(a.as_str(), "latent");
    assert_eq!(Ident::from_sym(a.sym()), a);
    let copied = a; // Copy, not move …
    assert_eq!(copied, a); // … and `a` is still usable.
    assert_ne!(a, Ident::from("latent_")); // prefixes are distinct symbols
    assert_eq!(intern("latent"), a.sym());
    assert_eq!(Sym::as_str(a.sym()), "latent");
    // Ordering stays lexicographic even though ids are interned in
    // first-seen order.
    let (z, y) = (Ident::from("zzz_order"), Ident::from("yyy_order"));
    assert!(y < z);
}

#[test]
fn shadowed_binders_resolve_innermost_first() {
    // `x` is bound three times: as a sample, shadowed by a let-expression
    // inside the return, and shadowed again inside a nested let.  Equal
    // symbols at different depths must resolve innermost-first, and leaving
    // the scope must un-shadow.
    let model = parse_program(
        r#"
        proc Model() : real consume latent provide obs {
          let x <- sample recv latent (Normal(0.0, 1.0));
          let y <- sample recv latent (Normal(x, 1.0));
          let _ <- sample send obs (Normal(y, 1.0));
          return (let x = x + 10.0 in (let x = x * 2.0 in x) + x) + x
        }
    "#,
    )
    .unwrap();
    let guide = parse_program(
        r#"
        proc Guide() provide latent {
          let x <- sample send latent (Normal(0.0, 1.0));
          let x <- sample send latent (Normal(x, 1.0));
          return ()
        }
    "#,
    )
    .unwrap();
    let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.5)]);
    let spec = JointSpec::new("Model", "Guide");
    let mut rng = Pcg32::seed_from_u64(7);
    let r = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
    let samples = r.latent_samples();
    let x = samples[0].as_f64();
    let y = samples[1].as_f64();
    // Inner `let x = x + 10` then `let x = x*2` ⇒ (2(x+10)) + (x+10) + x.
    let expected = 2.0 * (x + 10.0) + (x + 10.0) + x;
    assert!(
        (r.model_value.as_f64().unwrap() - expected).abs() < 1e-12,
        "shadowing resolved wrong: got {}, expected {expected}",
        r.model_value
    );
    // The guide's second `x` shadows the first at the *command* level: its
    // proposal is centred on the first draw, and both weights score the
    // actual pair (x, y).
    let expect_guide = Distribution::normal(0.0, 1.0).unwrap().log_density_f64(x)
        + Distribution::normal(x, 1.0).unwrap().log_density_f64(y);
    assert!((r.log_guide - expect_guide).abs() < 1e-10);
}

#[test]
fn same_named_channels_in_different_procedures_stay_separate() {
    // Both `Stage1` and `Stage2` declare a channel spelled `latent`; the
    // interner maps both to one symbol, so correctness depends on the
    // per-procedure `declared` resolution and scope bases, not on the
    // names being distinct.
    let model = parse_program(
        r#"
        proc Model() : real consume latent provide obs {
          let a <- call Stage1();
          let b <- call Stage2(a);
          let _ <- sample send obs (Normal(b, 1.0));
          return b
        }
        proc Stage1() : real consume latent {
          let v <- sample recv latent (Normal(0.0, 1.0));
          return v
        }
        proc Stage2(seen : real) : real consume latent {
          let v <- sample recv latent (Normal(seen, 1.0));
          return v + seen
        }
    "#,
    )
    .unwrap();
    let guide = parse_program(
        r#"
        proc Guide() provide latent {
          let _ <- call G1();
          let _ <- call G2();
          return ()
        }
        proc G1() provide latent {
          let v <- sample send latent (Normal(0.0, 2.0));
          return ()
        }
        proc G2() provide latent {
          let v <- sample send latent (Normal(0.0, 2.0));
          return ()
        }
    "#,
    )
    .unwrap();
    let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.3)]);
    let spec = JointSpec::new("Model", "Guide");
    let mut rng = Pcg32::seed_from_u64(21);
    let r = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
    let samples = r.latent_samples();
    assert_eq!(samples.len(), 2);
    let (a, b) = (samples[0].as_f64(), samples[1].as_f64());
    assert_eq!(r.model_value.as_f64().unwrap(), b + a);
    let expect_model = Distribution::normal(0.0, 1.0).unwrap().log_density_f64(a)
        + Distribution::normal(a, 1.0).unwrap().log_density_f64(b)
        + Distribution::normal(b + a, 1.0)
            .unwrap()
            .log_density_f64(0.3);
    assert!((r.log_model - expect_model).abs() < 1e-10);
    // And the replay path agrees bit-for-bit.
    let replay = exec
        .run(&spec, LatentSource::Replay(&r.latent), &mut rng)
        .unwrap();
    assert_eq!(replay.log_model.to_bits(), r.log_model.to_bits());
}

#[test]
fn channel_names_colliding_with_latent_obs_conventions() {
    // The channels are *swapped* relative to the conventional spelling: the
    // latent rendezvous happens on a channel literally named `obs`, and the
    // observation stream flows on a channel named `latent`.  Only the
    // `JointSpec` routing may decide which is which — if any layer matched
    // the conventional spellings (or confused equal symbols from the model
    // and guide tables), this run would misroute or deadlock.
    let model = parse_program(
        r#"
        proc Model() : real consume obs provide latent {
          let x <- sample recv obs (Normal(0.0, 1.0));
          let _ <- sample send latent (Normal(x, 1.0));
          return x
        }
    "#,
    )
    .unwrap();
    let guide = parse_program(
        r#"
        proc Guide() provide obs {
          let x <- sample send obs (Normal(0.0, 1.5));
          return ()
        }
    "#,
    )
    .unwrap();
    let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(1.0)]);
    let spec = JointSpec {
        latent_chan: "obs".into(),
        obs_chan: "latent".into(),
        ..JointSpec::new("Model", "Guide")
    };
    let mut rng = Pcg32::seed_from_u64(5);
    let r = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
    let x = r.latent_samples()[0].as_f64();
    let expect_model = Distribution::normal(0.0, 1.0).unwrap().log_density_f64(x)
        + Distribution::normal(x, 1.0).unwrap().log_density_f64(1.0);
    let expect_guide = Distribution::normal(0.0, 1.5).unwrap().log_density_f64(x);
    assert!((r.log_model - expect_model).abs() < 1e-10);
    assert!((r.log_guide - expect_guide).abs() < 1e-10);
    assert_eq!(r.observations_used, 1);
}
