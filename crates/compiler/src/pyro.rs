//! Code generation targeting Pyro.
//!
//! The paper's prototype compiler emits Python code that implements the
//! model and guide as `greenlet` coroutines exchanging messages, and then
//! hands the pair to Pyro's inference engines.  This module reproduces the
//! code generator: it emits Python *text* (never executed inside this
//! repository) in two styles:
//!
//! * [`Style::Coroutine`] — the faithful compilation scheme: every
//!   channel operation becomes a `Channel.send`/`Channel.recv` call and the
//!   two programs run as greenlets, with `pyro.sample` at each
//!   synchronisation point;
//! * [`Style::Plain`] — a direct (non-coroutine) Pyro translation used as
//!   the reference point when counting generated lines of code.
//!
//! The Table 2 harness measures the code-generation time (`CG`) and the
//! generated line count (`GLOC`) from this module.

use ppl_syntax::ast::{Cmd, Dir, DistExpr, Expr, Proc, Program, UnOp};
use std::fmt::Write as _;

/// The code-generation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Greenlet-coroutine compilation (the paper's scheme).
    Coroutine,
    /// Direct Pyro translation.
    Plain,
}

/// The output of compiling a model–guide pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPair {
    /// Python source for the model (plus shared runtime preamble).
    pub model_code: String,
    /// Python source for the guide.
    pub guide_code: String,
    /// Total number of non-blank generated lines (the paper's GLOC metric).
    pub generated_loc: usize,
}

/// Compiles a model program and a guide program to Pyro source text.
///
/// `model_entry` / `guide_entry` name the entry procedures.
pub fn compile_pair(
    model: &Program,
    model_entry: &str,
    guide: &Program,
    guide_entry: &str,
    style: Style,
) -> CompiledPair {
    let model_code = match style {
        Style::Coroutine => compile_program_coroutine(model, model_entry, Role::Model),
        Style::Plain => compile_program_plain(model, model_entry, Role::Model),
    };
    let guide_code = match style {
        Style::Coroutine => compile_program_coroutine(guide, guide_entry, Role::Guide),
        Style::Plain => compile_program_plain(guide, guide_entry, Role::Guide),
    };
    let generated_loc = count_loc(&model_code) + count_loc(&guide_code);
    CompiledPair {
        model_code,
        guide_code,
        generated_loc,
    }
}

/// Counts non-blank lines.
pub fn count_loc(code: &str) -> usize {
    code.lines().filter(|l| !l.trim().is_empty()).count()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Model,
    Guide,
}

/// Shared preamble for the coroutine style: a greenlet-backed channel.
fn coroutine_preamble() -> String {
    let mut s = String::new();
    s.push_str("import pyro\n");
    s.push_str("import pyro.distributions as dist\n");
    s.push_str("import torch\n");
    s.push_str("from greenlet import greenlet\n");
    s.push('\n');
    s.push_str("class Channel:\n");
    s.push_str("    \"\"\"A rendezvous channel between the model and guide greenlets.\"\"\"\n");
    s.push_str("    def __init__(self):\n");
    s.push_str("        self.peer = None\n");
    s.push_str("        self.slot = None\n");
    s.push_str("    def send(self, value):\n");
    s.push_str("        self.slot = value\n");
    s.push_str("        self.peer.switch()\n");
    s.push_str("    def recv(self):\n");
    s.push_str("        self.peer.switch()\n");
    s.push_str("        return self.slot\n");
    s.push('\n');
    s
}

fn plain_preamble() -> String {
    let mut s = String::new();
    s.push_str("import pyro\n");
    s.push_str("import pyro.distributions as dist\n");
    s.push_str("import torch\n");
    s.push('\n');
    s
}

fn compile_program_coroutine(program: &Program, entry: &str, role: Role) -> String {
    let mut out = coroutine_preamble();
    for p in &program.procs {
        compile_proc(&mut out, p, role, Style::Coroutine);
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "def {}(observations=None):",
        if role == Role::Model {
            "model"
        } else {
            "guide"
        }
    );
    let _ = writeln!(out, "    ctx = InferenceContext(observations)");
    let _ = writeln!(out, "    return greenlet(lambda: _{entry}(ctx))");
    out
}

fn compile_program_plain(program: &Program, entry: &str, role: Role) -> String {
    let mut out = plain_preamble();
    for p in &program.procs {
        compile_proc(&mut out, p, role, Style::Plain);
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "def {}(observations=None):",
        if role == Role::Model {
            "model"
        } else {
            "guide"
        }
    );
    let _ = writeln!(out, "    return _{entry}(SiteCounter(), observations)");
    out
}

fn compile_proc(out: &mut String, p: &Proc, role: Role, style: Style) {
    let params: Vec<String> = p.params.iter().map(|(x, _)| sanitize(x.as_str())).collect();
    let extra = match style {
        Style::Coroutine => "ctx".to_string(),
        Style::Plain => "sites, observations".to_string(),
    };
    let all_params = if params.is_empty() {
        extra
    } else {
        format!("{extra}, {}", params.join(", "))
    };
    let _ = writeln!(out, "def _{}({}):", p.name, all_params);
    let _ = writeln!(
        out,
        "    # consumes {:?}, provides {:?}",
        p.consumes.as_ref().map(|c| c.as_str()),
        p.provides.as_ref().map(|c| c.as_str())
    );
    let mut ctx = EmitCtx {
        indent: 1,
        site: 0,
        role,
        style,
        proc: p,
    };
    emit_cmd(out, &p.body, &mut ctx, true);
}

struct EmitCtx<'a> {
    indent: usize,
    site: usize,
    role: Role,
    style: Style,
    proc: &'a Proc,
}

impl EmitCtx<'_> {
    fn pad(&self) -> String {
        "    ".repeat(self.indent)
    }

    fn fresh_site(&mut self, prefix: &str) -> String {
        let s = format!("{}_{}_{}", prefix, self.proc.name, self.site);
        self.site += 1;
        s
    }
}

fn emit_cmd(out: &mut String, cmd: &Cmd, ctx: &mut EmitCtx<'_>, tail: bool) {
    match cmd {
        Cmd::Ret(e) => {
            let _ = writeln!(out, "{}return {}", ctx.pad(), emit_expr(e));
        }
        Cmd::Bind { var, first, rest } => {
            let target = if var.as_str() == "_" {
                "_".to_string()
            } else {
                sanitize(var.as_str())
            };
            emit_bound(out, &target, first, ctx);
            emit_cmd(out, rest, ctx, tail);
        }
        other => {
            // A command in tail position that is not a return: bind to a
            // temporary and return it.
            if tail {
                emit_bound(out, "_result", other, ctx);
                let _ = writeln!(out, "{}return _result", ctx.pad());
            } else {
                emit_bound(out, "_", other, ctx);
            }
        }
    }
}

fn emit_bound(out: &mut String, target: &str, cmd: &Cmd, ctx: &mut EmitCtx<'_>) {
    match cmd {
        Cmd::Ret(e) => {
            let _ = writeln!(out, "{}{} = {}", ctx.pad(), target, emit_expr(e));
        }
        Cmd::Call { proc, args } => {
            let args: Vec<String> = args.iter().map(emit_expr).collect();
            let extra = match ctx.style {
                Style::Coroutine => "ctx".to_string(),
                Style::Plain => "sites, observations".to_string(),
            };
            let all = if args.is_empty() {
                extra
            } else {
                format!("{extra}, {}", args.join(", "))
            };
            let _ = writeln!(out, "{}{} = _{}({})", ctx.pad(), target, proc, all);
        }
        Cmd::Sample { dir, chan, dist } => {
            let site = ctx.fresh_site(chan.as_str());
            let d = emit_dist(dist);
            match (ctx.style, ctx.role, dir) {
                (Style::Coroutine, Role::Guide, Dir::Send) => {
                    let _ = writeln!(
                        out,
                        "{}{} = pyro.sample(\"{}\", {})",
                        ctx.pad(),
                        target,
                        site,
                        d
                    );
                    let _ = writeln!(out, "{}ctx.{}.send({})", ctx.pad(), chan, target);
                }
                (Style::Coroutine, Role::Model, Dir::Recv) => {
                    let _ = writeln!(out, "{}{} = ctx.{}.recv()", ctx.pad(), target, chan);
                    let _ = writeln!(
                        out,
                        "{}pyro.factor(\"{}\", {}.log_prob({}))",
                        ctx.pad(),
                        site,
                        d,
                        target
                    );
                }
                (Style::Coroutine, Role::Model, Dir::Send) => {
                    // Observation site.
                    let _ = writeln!(
                        out,
                        "{}{} = pyro.sample(\"{}\", {}, obs=ctx.next_observation())",
                        ctx.pad(),
                        target,
                        site,
                        d
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "{}{} = pyro.sample(\"{}\", {})",
                        ctx.pad(),
                        target,
                        site,
                        d
                    );
                }
            }
            if ctx.style == Style::Plain {
                // Plain style already emitted a pyro.sample above through the
                // default arm or the specialised arms; nothing extra to do.
            }
        }
        Cmd::Branch {
            dir,
            chan,
            pred,
            then_cmd,
            else_cmd,
        } => {
            let cond = match (ctx.style, dir, pred) {
                (Style::Coroutine, Dir::Send, Some(p)) => {
                    let c = emit_expr(p);
                    let _ = writeln!(out, "{}_sel = {}", ctx.pad(), c);
                    let _ = writeln!(out, "{}ctx.{}.send(_sel)", ctx.pad(), chan);
                    "_sel".to_string()
                }
                (Style::Coroutine, Dir::Recv, _) => {
                    let _ = writeln!(out, "{}_sel = ctx.{}.recv()", ctx.pad(), chan);
                    "_sel".to_string()
                }
                (_, _, Some(p)) => emit_expr(p),
                (_, _, None) => "_sel".to_string(),
            };
            let _ = writeln!(out, "{}if {}:", ctx.pad(), cond);
            ctx.indent += 1;
            emit_bound(out, target, strip_tail(then_cmd), ctx);
            emit_rest(out, then_cmd, target, ctx);
            ctx.indent -= 1;
            let _ = writeln!(out, "{}else:", ctx.pad());
            ctx.indent += 1;
            emit_bound(out, target, strip_tail(else_cmd), ctx);
            emit_rest(out, else_cmd, target, ctx);
            ctx.indent -= 1;
        }
        Cmd::Bind { .. } => {
            // A nested block bound to a variable: emit its statements and
            // assign the final value.
            emit_block_value(out, cmd, target, ctx);
        }
    }
}

/// For a branch arm that is a sequence, the first command of the sequence.
fn strip_tail(cmd: &Cmd) -> &Cmd {
    match cmd {
        Cmd::Bind { first, .. } => first,
        other => other,
    }
}

/// Emits the remainder of a branch arm after its first command.
fn emit_rest(out: &mut String, cmd: &Cmd, target: &str, ctx: &mut EmitCtx<'_>) {
    if let Cmd::Bind { var, rest, .. } = cmd {
        // `strip_tail` emitted the arm's first command into `target`; if the
        // program bound its value to a named variable, re-establish that name
        // before the rest of the sequence refers to it.
        if var.as_str() != "_" {
            let bound = sanitize(var.as_str());
            if bound != target {
                let _ = writeln!(out, "{}{} = {}", ctx.pad(), bound, target);
            }
        }
        emit_block_value(out, rest, target, ctx);
    }
}

fn emit_block_value(out: &mut String, cmd: &Cmd, target: &str, ctx: &mut EmitCtx<'_>) {
    match cmd {
        Cmd::Ret(e) => {
            let _ = writeln!(out, "{}{} = {}", ctx.pad(), target, emit_expr(e));
        }
        Cmd::Bind { var, first, rest } => {
            let bound = if var.as_str() == "_" {
                "_".to_string()
            } else {
                sanitize(var.as_str())
            };
            emit_bound(out, &bound, first, ctx);
            emit_block_value(out, rest, target, ctx);
        }
        other => emit_bound(out, target, other, ctx),
    }
}

fn emit_expr(e: &Expr) -> String {
    match e {
        Expr::Var(x) => sanitize(x.as_str()),
        Expr::Triv => "None".to_string(),
        Expr::Bool(b) => if *b { "True" } else { "False" }.to_string(),
        Expr::Real(r) => format!("{r:?}"),
        Expr::Nat(n) => n.to_string(),
        Expr::If(c, a, b) => format!(
            "({} if {} else {})",
            emit_expr(a),
            emit_expr(c),
            emit_expr(b)
        ),
        Expr::BinOp(op, a, b) => {
            let sym = match op {
                ppl_syntax::ast::BinOp::And => "and",
                ppl_syntax::ast::BinOp::Or => "or",
                other => other.symbol(),
            };
            format!("({} {} {})", emit_expr(a), sym, emit_expr(b))
        }
        Expr::UnOp(op, a) => match op {
            UnOp::Neg => format!("(-{})", emit_expr(a)),
            UnOp::Not => format!("(not {})", emit_expr(a)),
            UnOp::Exp => format!("torch.exp(torch.tensor({}))", emit_expr(a)),
            UnOp::Ln => format!("torch.log(torch.tensor({}))", emit_expr(a)),
            UnOp::Sqrt => format!("torch.sqrt(torch.tensor({}))", emit_expr(a)),
            UnOp::ToReal => format!("float({})", emit_expr(a)),
        },
        Expr::Lam(x, _, body) => format!("(lambda {}: {})", sanitize(x.as_str()), emit_expr(body)),
        Expr::App(f, a) => format!("{}({})", emit_expr(f), emit_expr(a)),
        Expr::Let(x, e1, e2) => format!(
            "(lambda {}: {})({})",
            sanitize(x.as_str()),
            emit_expr(e2),
            emit_expr(e1)
        ),
        Expr::Dist(d) => emit_dist_expr(d),
    }
}

fn emit_dist(e: &Expr) -> String {
    match e {
        Expr::Dist(d) => emit_dist_expr(d),
        other => emit_expr(other),
    }
}

fn emit_dist_expr(d: &DistExpr) -> String {
    match d {
        DistExpr::Bernoulli(p) => format!("dist.Bernoulli({})", emit_expr(p)),
        DistExpr::Uniform => "dist.Uniform(0.0, 1.0)".to_string(),
        DistExpr::Beta(a, b) => format!("dist.Beta({}, {})", emit_expr(a), emit_expr(b)),
        DistExpr::Gamma(a, b) => format!("dist.Gamma({}, {})", emit_expr(a), emit_expr(b)),
        DistExpr::Normal(a, b) => format!("dist.Normal({}, {})", emit_expr(a), emit_expr(b)),
        DistExpr::Categorical(ws) => {
            let args: Vec<String> = ws.iter().map(emit_expr).collect();
            format!("dist.Categorical(torch.tensor([{}]))", args.join(", "))
        }
        DistExpr::Geometric(p) => format!("dist.Geometric({})", emit_expr(p)),
        DistExpr::Poisson(l) => format!("dist.Poisson({})", emit_expr(l)),
    }
}

fn sanitize(name: &str) -> String {
    // Avoid Python keywords that are legal identifiers in the PPL.
    const PY_KEYWORDS: &[&str] = &["lambda", "def", "class", "return", "if", "else", "in", "is"];
    if PY_KEYWORDS.contains(&name) {
        format!("{name}_")
    } else {
        name.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    const MODEL: &str = r#"
        proc Model() : real consume latent provide obs {
          let v <- sample recv latent (Gamma(2.0, 1.0));
          if send latent (v < 2.0) {
            let _ <- sample send obs (Normal(-1.0, 1.0));
            return v
          } else {
            let m <- sample recv latent (Beta(3.0, 1.0));
            let _ <- sample send obs (Normal(m, 1.0));
            return v
          }
        }
    "#;

    const GUIDE: &str = r#"
        proc Guide1() provide latent {
          let v <- sample send latent (Gamma(1.0, 1.0));
          if recv latent {
            return ()
          } else {
            let _ <- sample send latent (Unif);
            return ()
          }
        }
    "#;

    #[test]
    fn coroutine_compilation_mentions_greenlet_and_channels() {
        let model = parse_program(MODEL).unwrap();
        let guide = parse_program(GUIDE).unwrap();
        let out = compile_pair(&model, "Model", &guide, "Guide1", Style::Coroutine);
        assert!(out.model_code.contains("from greenlet import greenlet"));
        assert!(out.model_code.contains("ctx.latent.recv()"));
        assert!(out.model_code.contains("pyro.factor"));
        assert!(out.model_code.contains("obs=ctx.next_observation()"));
        assert!(out.guide_code.contains("ctx.latent.send"));
        assert!(out.guide_code.contains("pyro.sample"));
        assert!(out.generated_loc > 40, "GLOC {}", out.generated_loc);
    }

    #[test]
    fn plain_compilation_has_no_greenlet() {
        let model = parse_program(MODEL).unwrap();
        let guide = parse_program(GUIDE).unwrap();
        let out = compile_pair(&model, "Model", &guide, "Guide1", Style::Plain);
        assert!(!out.model_code.contains("greenlet"));
        assert!(out.model_code.contains("pyro.sample"));
        assert!(out.generated_loc > 20);
        // The coroutine style is strictly larger than the plain style.
        let coro = compile_pair(&model, "Model", &guide, "Guide1", Style::Coroutine);
        assert!(coro.generated_loc > out.generated_loc);
    }

    #[test]
    fn recursive_programs_compile_to_recursive_python() {
        let prog = parse_program(
            r#"
            proc PcfgGen(k : ureal) : real consume latent {
              let u <- sample recv latent (Unif);
              if send latent (u < k) {
                let v <- sample recv latent (Normal(0.0, 1.0));
                return v
              } else {
                let lhs <- call PcfgGen(k);
                let rhs <- call PcfgGen(k);
                return lhs + rhs
              }
            }
        "#,
        )
        .unwrap();
        let out = compile_pair(&prog, "PcfgGen", &prog, "PcfgGen", Style::Coroutine);
        assert!(out.model_code.contains("_PcfgGen(ctx, k)"));
        assert!(out.model_code.matches("def _PcfgGen").count() == 1);
    }

    #[test]
    fn expressions_translate_to_python() {
        assert_eq!(
            emit_expr(&ppl_syntax::parse_expr("1.0 + 2.0").unwrap()),
            "(1.0 + 2.0)"
        );
        assert_eq!(
            emit_expr(&ppl_syntax::parse_expr("true && false").unwrap()),
            "(True and False)"
        );
        assert_eq!(
            emit_expr(&ppl_syntax::parse_expr("if b then 1.0 else 0.0").unwrap()),
            "(1.0 if b else 0.0)"
        );
        assert_eq!(emit_expr(&ppl_syntax::parse_expr("()").unwrap()), "None");
        assert!(emit_expr(&ppl_syntax::parse_expr("exp(1.0)").unwrap()).contains("torch.exp"));
        assert_eq!(
            emit_expr(&ppl_syntax::parse_expr("Cat(1.0, 2.0)").unwrap()),
            "dist.Categorical(torch.tensor([1.0, 2.0]))"
        );
        // Python keyword collision.
        assert_eq!(sanitize("lambda"), "lambda_");
    }

    #[test]
    fn branch_arm_binders_are_reestablished_in_generated_code() {
        // The else arm of MODEL binds `m` and uses it in a later command;
        // the arm's first command is emitted into `_result`, so the
        // generated Python must rebind the name or `m` is undefined.
        let model = parse_program(MODEL).unwrap();
        let guide = parse_program(GUIDE).unwrap();
        for style in [Style::Coroutine, Style::Plain] {
            let out = compile_pair(&model, "Model", &guide, "Guide1", style);
            assert!(
                out.model_code.contains("m = _result"),
                "{style:?}:\n{}",
                out.model_code
            );
        }
    }

    #[test]
    fn loc_counter_ignores_blank_lines() {
        assert_eq!(count_loc("a\n\nb\n  \nc"), 3);
        assert_eq!(count_loc(""), 0);
    }
}
