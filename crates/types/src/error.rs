//! Type-error reporting for both the base-type checker and the guide-type
//! checker.

use std::fmt;

/// A type error produced by the base-type checker or the guide-type
/// inference algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    /// Human-readable description of the error.
    pub message: String,
    /// The procedure in which the error occurred, when known.
    pub in_proc: Option<String>,
}

impl TypeError {
    /// Creates an error without procedure context.
    pub fn new(message: impl Into<String>) -> Self {
        TypeError {
            message: message.into(),
            in_proc: None,
        }
    }

    /// Attaches the name of the procedure being checked.
    pub fn in_proc(mut self, name: impl Into<String>) -> Self {
        self.in_proc = Some(name.into());
        self
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.in_proc {
            Some(p) => write!(f, "type error in procedure '{p}': {}", self.message),
            None => write!(f, "type error: {}", self.message),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_proc() {
        let e = TypeError::new("mismatch");
        assert_eq!(e.to_string(), "type error: mismatch");
        let e = e.in_proc("Model");
        assert!(e.to_string().contains("'Model'"));
    }
}
