//! Particle-throughput measurement for the zero-copy execution core.
//!
//! The Table 2 harness measures end-to-end inference latency; this module
//! measures the quantity the execution-core refactor optimises directly:
//! **particles per second** through the joint coroutine executor, single
//! threaded versus the parallel particle driver.  Because the driver gives
//! particle `i` the RNG substream `master.split(i)`, both configurations
//! produce bit-identical results — which every row re-verifies — so the
//! speedup column is a pure scheduling win, not a different computation.
//!
//! [`serving_rows`] measures the batched-serving primitive on top of the
//! same guarantee: one compiled model answers a grid of observation sets
//! through [`Session::run_batch_threaded`], 1 vs N batch threads, with the
//! per-query posteriors re-verified bit-identical.  [`http_rows`] goes one
//! layer further out: a real loopback `ppl-serve` instance, measuring
//! requests/sec cold (inference per request) versus warm (exact cache
//! hits) with the byte-identity of every warm response re-verified.
//! [`admission_rows`] measures the model-ingestion pipeline: full
//! parse → type-check → compile admissions per second in-process, plus the
//! `POST /v1/models` submit→first-query latency over loopback HTTP.
//! [`amortization_rows`] measures the PR 8 artifact store: one cold VI
//! query (fit + draw) versus artifact-warm queries that reuse a persisted
//! fit — byte-identity and the zero-fit-executions invariant re-verified
//! per request, with the response cache disabled so the speedup is pure
//! fit amortization.
//!
//! [`bench_json`] serialises the rows (plus per-engine wall times) into the
//! machine-readable `BENCH_inference.json` consumed by CI, so the perf
//! trajectory of the runtime is tracked from commit to commit.

use crate::alloc_track;
use guide_ppl::{Method, PosteriorResult, Query, Session};
use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;
use ppl_inference::{
    ImportanceSampler, IndependenceMh, ParamSpec, VariationalInference, ViConfig, DEFAULT_BLOCK,
};
use ppl_runtime::{JointExecutor, JointScratch, JointSpec};
use std::fmt::Write as _;
use std::time::Instant;

/// Workload configuration for the throughput scenario.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputConfig {
    /// Importance-sampling particles per measurement.
    pub particles: usize,
    /// Worker threads for the parallel configuration.
    pub threads: usize,
    /// Vectorised-execution block size of the measured configurations
    /// (a pure performance knob — results are bit-identical at every
    /// block size, which [`block_rows`] re-verifies).
    pub block: usize,
    /// Master seed (shared by both configurations of each row).
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            particles: 20_000,
            threads: 4,
            block: DEFAULT_BLOCK,
            seed: 2_026,
        }
    }
}

/// One benchmark's throughput measurement.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Benchmark name (Table 2 IS subset).
    pub name: &'static str,
    /// Particles drawn per configuration.
    pub particles: usize,
    /// Threads used by the parallel configuration.
    pub threads: usize,
    /// Vectorised-execution block size both configurations ran with.
    pub block: usize,
    /// Wall time of the single-threaded run, in seconds.
    pub seq_seconds: f64,
    /// Wall time of the parallel run, in seconds.
    pub par_seconds: f64,
    /// Particles per second, single-threaded.
    pub seq_particles_per_sec: f64,
    /// Particles per second, parallel.
    pub par_particles_per_sec: f64,
    /// `par_particles_per_sec / seq_particles_per_sec`.
    pub speedup: f64,
    /// Effective sample size of the (identical) runs.
    pub ess: f64,
    /// Log-evidence estimate of the (identical) runs.
    pub log_evidence: f64,
    /// Whether the two configurations produced bit-identical results
    /// (always expected to be `true`; recorded so CI can assert it).
    pub bit_identical: bool,
    /// Heap allocations per particle in the *steady state* (a recycled
    /// joint-execution loop after warm-up; the tentpole target is `0`).
    /// `NaN` (serialised as `null`) when the counting allocator is not
    /// installed in the measuring binary.
    pub allocs_per_particle: f64,
}

/// Allocations per joint execution of a warmed, recycled steady-state
/// block-mode loop (the number the allocation-free-hot-loop refactor
/// drives to zero — and the vectorised executor must keep there), or
/// `NaN` when the counting allocator is not installed.
fn steady_state_allocs_per_particle(
    executor: &JointExecutor,
    spec: &JointSpec,
    seed: u64,
    block: usize,
) -> f64 {
    if !alloc_track::installed() {
        return f64::NAN;
    }
    let block = block.max(1);
    let master = Pcg32::seed_from_u64(seed);
    let mut scratch = JointScratch::new();
    let mut results = Vec::new();
    let mut stream = 0u64;
    let mut run_batch = |blocks: usize, stream: &mut u64| -> u64 {
        let before = alloc_track::thread_allocations();
        for _ in 0..blocks {
            results.clear();
            executor
                .run_block_with_scratch(spec, &master, *stream, block, &mut scratch, &mut results)
                .expect("joint execution");
            *stream += block as u64;
            for joint in results.drain(..) {
                scratch.recycle(joint.latent);
            }
        }
        alloc_track::thread_allocations() - before
    };
    // Warm-up grows every lane buffer (and compiles the block plan).
    run_batch(4, &mut stream);
    let measured_blocks = (1_000usize).div_ceil(block);
    let allocs = run_batch(measured_blocks, &mut stream);
    allocs as f64 / (measured_blocks * block) as f64
}

/// Wall time of one engine on its reference workload.
#[derive(Debug, Clone)]
pub struct EngineTiming {
    /// Engine abbreviation (`IS` / `VI` / `MCMC`).
    pub engine: &'static str,
    /// Benchmark the workload runs on.
    pub benchmark: &'static str,
    /// Wall time in seconds.
    pub wall_seconds: f64,
    /// Name of the quality metric recorded alongside the time.
    pub metric: &'static str,
    /// The metric's value.
    pub value: f64,
}

/// Measures particles/sec (1 vs N threads) on the Table 2 IS benchmarks.
pub fn throughput_rows(config: &ThroughputConfig) -> Vec<ThroughputRow> {
    ppl_models::table2_benchmarks()
        .into_iter()
        .filter(|(_, kind)| *kind == ppl_models::InferenceKind::ImportanceSampling)
        .map(|(name, _)| throughput_row(name, config))
        .collect()
}

fn throughput_row(name: &'static str, config: &ThroughputConfig) -> ThroughputRow {
    let session = Session::from_benchmark(name).expect("registered benchmark");
    let b = ppl_models::benchmark(name).expect("registered benchmark");
    let executor = session.executor(b.observations.clone());
    let spec = session.spec();

    let mut rng = Pcg32::seed_from_u64(config.seed);
    let seq_start = Instant::now();
    let seq = ImportanceSampler::new(config.particles)
        .with_block(config.block)
        .run(&executor, &spec, &mut rng)
        .expect("sequential IS");
    let seq_seconds = seq_start.elapsed().as_secs_f64();

    let mut rng = Pcg32::seed_from_u64(config.seed);
    let par_start = Instant::now();
    let par = ImportanceSampler::new(config.particles)
        .with_threads(config.threads)
        .with_block(config.block)
        .run(&executor, &spec, &mut rng)
        .expect("parallel IS");
    let par_seconds = par_start.elapsed().as_secs_f64();

    let bit_identical =
        seq.log_evidence.to_bits() == par.log_evidence.to_bits()
            && seq.ess.to_bits() == par.ess.to_bits()
            && seq.particles.iter().zip(&par.particles).all(|(a, b)| {
                a.log_weight.to_bits() == b.log_weight.to_bits() && a.latent == b.latent
            });

    ThroughputRow {
        name,
        particles: config.particles,
        threads: config.threads,
        block: config.block,
        seq_seconds,
        par_seconds,
        seq_particles_per_sec: config.particles as f64 / seq_seconds,
        par_particles_per_sec: config.particles as f64 / par_seconds,
        speedup: seq_seconds / par_seconds,
        ess: seq.ess,
        log_evidence: seq.log_evidence,
        bit_identical,
        allocs_per_particle: steady_state_allocs_per_particle(
            &executor,
            &spec,
            config.seed,
            config.block,
        ),
    }
}

/// One block-vs-scalar measurement: single-thread particles/sec of one
/// benchmark at one block size, with the result re-verified bit-identical
/// to the scalar (block = 1) run of the same seed.
#[derive(Debug, Clone)]
pub struct BlockRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Block size of this measurement (1 = the scalar coroutine path).
    pub block: usize,
    /// Particles drawn.
    pub particles: usize,
    /// Wall time of the single-threaded run, in seconds.
    pub wall_seconds: f64,
    /// Particles per second, single-threaded.
    pub particles_per_sec: f64,
    /// `particles_per_sec` relative to this benchmark's scalar row.
    pub speedup_vs_scalar: f64,
    /// Whether this block size reproduced the scalar run bit-for-bit
    /// (always expected `true`; recorded so CI can assert it).
    pub bit_identical: bool,
}

/// Block sizes [`block_rows`] scans (1 = scalar reference).
pub const BLOCK_SCAN: [usize; 3] = [1, 64, 256];

/// Measures single-thread particles/sec at each [`BLOCK_SCAN`] size on the
/// Table 2 IS benchmarks, re-verifying that every block size reproduces
/// the scalar run bit-for-bit.
pub fn block_rows(config: &ThroughputConfig) -> Vec<BlockRow> {
    let mut out = Vec::new();
    for (name, _) in ppl_models::table2_benchmarks()
        .into_iter()
        .filter(|(_, kind)| *kind == ppl_models::InferenceKind::ImportanceSampling)
    {
        let session = Session::from_benchmark(name).expect("registered benchmark");
        let b = ppl_models::benchmark(name).expect("registered benchmark");
        let executor = session.executor(b.observations.clone());
        let spec = session.spec();
        let mut scalar: Option<ppl_inference::ImportanceResult> = None;
        let mut scalar_seconds = f64::NAN;
        for block in BLOCK_SCAN {
            let mut rng = Pcg32::seed_from_u64(config.seed);
            let start = Instant::now();
            let result = ImportanceSampler::new(config.particles)
                .with_block(block)
                .run(&executor, &spec, &mut rng)
                .expect("single-thread IS");
            let wall_seconds = start.elapsed().as_secs_f64();
            let bit_identical = match &scalar {
                None => true,
                Some(reference) => {
                    reference.log_evidence.to_bits() == result.log_evidence.to_bits()
                        && reference.ess.to_bits() == result.ess.to_bits()
                        && reference
                            .particles
                            .iter()
                            .zip(&result.particles)
                            .all(|(a, b)| {
                                a.log_weight.to_bits() == b.log_weight.to_bits()
                                    && a.latent == b.latent
                            })
                }
            };
            if scalar.is_none() {
                scalar_seconds = wall_seconds;
                scalar = Some(result);
            }
            out.push(BlockRow {
                name,
                block,
                particles: config.particles,
                wall_seconds,
                particles_per_sec: config.particles as f64 / wall_seconds,
                speedup_vs_scalar: scalar_seconds / wall_seconds,
                bit_identical,
            });
        }
    }
    out
}

/// One MCMC throughput measurement: proposals per second through the
/// sequential chain (independence MH over the recycled scratch pool).
#[derive(Debug, Clone)]
pub struct McmcRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Proposal iterations measured.
    pub iterations: usize,
    /// Wall time of the chain, in seconds.
    pub wall_seconds: f64,
    /// Proposals evaluated per second.
    pub proposals_per_sec: f64,
    /// Fraction of proposals accepted.
    pub acceptance_rate: f64,
    /// Heap allocations per proposal in the steady state (burn-in-only
    /// chain, so no states are retained; target `0`).  `NaN`/`null` when
    /// the counting allocator is not installed.
    pub allocs_per_proposal: f64,
}

/// Measures MCMC proposal throughput on the Table 2 MCMC-style workloads
/// (`ex-1` as the reference chain plus `gmm` for a multi-site model).
pub fn mcmc_rows(config: &ThroughputConfig) -> Vec<McmcRow> {
    ["ex-1", "gmm"]
        .into_iter()
        .map(|name| mcmc_row(name, config))
        .collect()
}

fn mcmc_row(name: &'static str, config: &ThroughputConfig) -> McmcRow {
    let session = Session::from_benchmark(name).expect("registered benchmark");
    let b = ppl_models::benchmark(name).expect("registered benchmark");
    let executor = session.executor(b.observations.clone());
    let spec = session.spec();
    let iterations = (config.particles / 2).max(100);

    let mut rng = Pcg32::seed_from_u64(config.seed);
    let start = Instant::now();
    let result = IndependenceMh::new(iterations, iterations / 10)
        .run(&executor, &spec, &mut rng)
        .expect("MCMC chain");
    let wall_seconds = start.elapsed().as_secs_f64();

    // Steady-state allocation count: a burn-in-only chain retains no
    // states, so what remains is the pure proposal loop.  The chain owns
    // its scratch pool, so every run pays the same warm-up (same seed ⇒
    // identical prefix); differencing a short and a long run cancels it
    // and leaves the pure per-proposal increment.
    let allocs_per_proposal = if alloc_track::installed() {
        let measure = |iters: usize| -> u64 {
            let mut rng = Pcg32::seed_from_u64(config.seed);
            let before = alloc_track::thread_allocations();
            IndependenceMh::new(iters, iters)
                .run(&executor, &spec, &mut rng)
                .expect("MCMC chain");
            alloc_track::thread_allocations() - before
        };
        let short = measure(200);
        let long = measure(1_200);
        long.saturating_sub(short) as f64 / 1_000.0
    } else {
        f64::NAN
    };

    McmcRow {
        name,
        iterations,
        wall_seconds,
        proposals_per_sec: iterations as f64 / wall_seconds,
        acceptance_rate: result.acceptance_rate,
        allocs_per_proposal,
    }
}

/// One batched-serving measurement: many observation sets answered by one
/// compiled model through [`Session::run_batch_threaded`].
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Queries in the batch.
    pub queries: usize,
    /// Importance-sampling particles per query.
    pub particles_per_query: usize,
    /// Batch worker threads for the parallel configuration.
    pub batch_threads: usize,
    /// Wall time of the single-threaded batch, in seconds.
    pub seq_seconds: f64,
    /// Wall time of the parallel batch, in seconds.
    pub par_seconds: f64,
    /// Queries answered per second, single-threaded.
    pub seq_queries_per_sec: f64,
    /// Queries answered per second, parallel.
    pub par_queries_per_sec: f64,
    /// `seq_seconds / par_seconds`.
    pub speedup: f64,
    /// Whether both configurations produced bit-identical posteriors.
    pub bit_identical: bool,
}

/// FNV-1a over every number that defines a posterior — all three engine
/// variants are covered, so the bit-identity comparison can never become
/// vacuous if the serving scenario switches methods.
fn posterior_fingerprint(result: &PosteriorResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut word = |w: u64| {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    match result {
        PosteriorResult::Importance(r) => {
            word(r.log_evidence.to_bits());
            word(r.ess.to_bits());
            for p in &r.particles {
                word(p.log_weight.to_bits());
                for s in &p.samples {
                    word(s.as_f64().to_bits());
                }
            }
        }
        PosteriorResult::Mcmc(r) => {
            word(r.acceptance_rate.to_bits());
            for state in &r.chain {
                word(state.log_model.to_bits());
                for s in &state.samples {
                    word(s.as_f64().to_bits());
                }
            }
        }
        PosteriorResult::Vi(r) => {
            for p in &r.fit.params {
                word(p.to_bits());
            }
            for e in &r.fit.elbo_trace {
                word(e.to_bits());
            }
            word(r.draws.log_evidence.to_bits());
        }
    }
    h
}

/// Measures batched serving (1 vs N batch threads, bit-identity
/// re-verified) on a conjugate reference model with a grid of observation
/// sets — the "one compiled model, many requests" scenario.
pub fn serving_rows(config: &ThroughputConfig) -> Vec<ServingRow> {
    let name = "normal-normal";
    let session = Session::from_benchmark(name).expect("registered benchmark");
    let num_queries = 16usize;
    let particles_per_query = (config.particles / num_queries).max(100);
    let queries: Vec<Query> = (0..num_queries)
        .map(|i| {
            session
                .query()
                .observe(vec![Sample::Real(-2.0 + i as f64 * 0.25)])
                .seed(config.seed ^ i as u64)
                .build()
                .expect("grid observations validate")
        })
        .collect();
    let method = Method::Importance {
        particles: particles_per_query,
    };

    let seq_start = Instant::now();
    let seq = session
        .run_batch_threaded(&queries, &method, 1)
        .expect("sequential batch");
    let seq_seconds = seq_start.elapsed().as_secs_f64();

    let par_start = Instant::now();
    let par = session
        .run_batch_threaded(&queries, &method, config.threads)
        .expect("parallel batch");
    let par_seconds = par_start.elapsed().as_secs_f64();

    let bit_identical = seq
        .iter()
        .zip(&par)
        .all(|(a, b)| posterior_fingerprint(a) == posterior_fingerprint(b));

    vec![ServingRow {
        name,
        queries: num_queries,
        particles_per_query,
        batch_threads: config.threads,
        seq_seconds,
        par_seconds,
        seq_queries_per_sec: num_queries as f64 / seq_seconds,
        par_queries_per_sec: num_queries as f64 / par_seconds,
        speedup: seq_seconds / par_seconds,
        bit_identical,
    }]
}

/// One HTTP serving measurement: requests per second through a real
/// loopback `ppl-serve` instance, cold (every request runs inference)
/// versus warm (every request is an exact cache hit).
#[derive(Debug, Clone)]
pub struct HttpRow {
    /// Benchmark name served.
    pub name: &'static str,
    /// Requests per pass.
    pub requests: usize,
    /// Importance-sampling particles per request.
    pub particles_per_request: usize,
    /// Wall time of the cold pass, in seconds.
    pub cold_seconds: f64,
    /// Wall time of the warm (cache-hit) pass, in seconds.
    pub warm_seconds: f64,
    /// Requests per second, cold.
    pub cold_requests_per_sec: f64,
    /// Requests per second, warm.
    pub warm_requests_per_sec: f64,
    /// Cache hit rate over both passes (expected 0.5: all misses, then
    /// all hits).
    pub cache_hit_rate: f64,
    /// Every response was a 200 and each warm body was byte-identical to
    /// its cold counterpart.
    pub ok: bool,
}

/// Measures HTTP serving over loopback: boots an in-process `ppl-serve`
/// on an ephemeral port, fires one pass of distinct-seed queries (cold:
/// every request runs inference) and then the identical pass again (warm:
/// every request is an exact cache hit), over one keep-alive connection.
pub fn http_rows(config: &ThroughputConfig) -> Vec<HttpRow> {
    use ppl_serve::http::ClientConn;
    use ppl_serve::{App, Registry, Server};

    let name = "ex-1";
    let requests = 32usize;
    let particles_per_request = (config.particles / requests).max(100);
    let app = App::new(Registry::from_benchmarks(), requests * 2);
    let server = Server::bind("127.0.0.1:0", config.threads.clamp(1, 4), app.handler())
        .expect("bind an ephemeral loopback port");
    let mut conn = ClientConn::connect(server.local_addr()).expect("loopback connect");

    let bodies: Vec<String> = (0..requests)
        .map(|i| {
            format!(
                r#"{{"model":"{name}","observations":[0.8],"method":{{"algorithm":"importance","particles":{particles_per_request}}},"seed":{}}}"#,
                config.seed ^ i as u64
            )
        })
        .collect();

    let mut run_pass = |expected: Option<&[Vec<u8>]>| -> (f64, Vec<Vec<u8>>, bool) {
        let start = Instant::now();
        let mut responses = Vec::with_capacity(requests);
        let mut ok = true;
        for (i, body) in bodies.iter().enumerate() {
            let (status, _, response) = conn
                .send("POST", "/v1/query", Some(body))
                .expect("loopback request");
            ok &= status == 200;
            if let Some(expected) = expected {
                ok &= response == expected[i];
            }
            responses.push(response);
        }
        (start.elapsed().as_secs_f64(), responses, ok)
    };

    let (cold_seconds, cold_bodies, cold_ok) = run_pass(None);
    let (warm_seconds, _, warm_ok) = run_pass(Some(&cold_bodies));
    let cache_hit_rate = app.cache.hit_rate();
    server.shutdown();

    vec![HttpRow {
        name,
        requests,
        particles_per_request,
        cold_seconds,
        warm_seconds,
        cold_requests_per_sec: requests as f64 / cold_seconds,
        warm_requests_per_sec: requests as f64 / warm_seconds,
        cache_hit_rate,
        ok: cold_ok && warm_ok,
    }]
}

/// One flight-recorder overhead measurement: in-process handler
/// throughput with tracing off versus on, plus the relative cost of
/// leaving the recorder enabled.
#[derive(Debug, Clone)]
pub struct ObservabilityRow {
    /// Benchmark name served.
    pub name: &'static str,
    /// Requests per pass (cache disabled, so each runs inference).
    pub requests: usize,
    /// Importance-sampling particles per request.
    pub particles_per_request: usize,
    /// Best-of wall time with the recorder disabled, in seconds.
    pub off_seconds: f64,
    /// Best-of wall time with the recorder enabled, in seconds.
    pub on_seconds: f64,
    /// Requests per second, recorder disabled.
    pub off_requests_per_sec: f64,
    /// Requests per second, recorder enabled.
    pub on_requests_per_sec: f64,
    /// Relative cost of tracing: `(on - off) / off × 100`.  Can be
    /// negative under noise; CI gates it below a few percent.
    pub tracing_on_overhead_pct: f64,
    /// Every response was a 200, traced passes produced ring entries,
    /// and untraced responses carried no trace id.
    pub ok: bool,
}

/// Measures the flight recorder's overhead: identical request streams
/// through the in-process handler (no sockets, cache disabled so every
/// request runs inference), interleaving recorder-off and recorder-on
/// passes and keeping the best of each so scheduler noise hits both
/// modes alike.
pub fn observability_rows(config: &ThroughputConfig) -> Vec<ObservabilityRow> {
    use ppl_serve::http::Request;
    use ppl_serve::{App, Registry};

    // Few, heavy requests: per-request inference must dominate so the
    // measurement reflects tracing's relative cost in realistic serving,
    // not fixed per-request bookkeeping plus timer noise.
    let name = "ex-1";
    let requests = 8usize;
    let particles_per_request = (config.particles / requests).max(500);
    let app = App::new(Registry::from_benchmarks(), 0);
    let handler = app.handler();
    let bodies: Vec<String> = (0..requests)
        .map(|i| {
            format!(
                r#"{{"model":"{name}","observations":[0.8],"method":{{"algorithm":"importance","particles":{particles_per_request}}},"seed":{}}}"#,
                config.seed ^ i as u64
            )
        })
        .collect();
    let request = |body: &str| Request {
        method: "POST".to_string(),
        path: "/v1/query".to_string(),
        query: None,
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    };

    let mut ok = true;
    let mut run_pass = |enabled: bool| -> f64 {
        app.obs.set_enabled(enabled);
        let start = Instant::now();
        for body in &bodies {
            let response = handler(&request(body));
            ok &= response.status == 200;
            ok &= response.headers.iter().any(|(k, _)| k == "X-Ppl-Trace-Id") == enabled;
        }
        start.elapsed().as_secs_f64()
    };

    run_pass(false); // warm-up: fault in lazy runtime state for both modes
    let (mut off_seconds, mut on_seconds) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        off_seconds = off_seconds.min(run_pass(false));
        on_seconds = on_seconds.min(run_pass(true));
    }
    ok &= app.obs.recorded() > 0;
    app.obs.set_enabled(true);

    vec![ObservabilityRow {
        name,
        requests,
        particles_per_request,
        off_seconds,
        on_seconds,
        off_requests_per_sec: requests as f64 / off_seconds,
        on_requests_per_sec: requests as f64 / on_seconds,
        tracing_on_overhead_pct: (on_seconds / off_seconds - 1.0) * 100.0,
        ok,
    }]
}

/// One admission-control measurement: how fast the full
/// parse → guide-type check → compatibility → compile pipeline admits a
/// model, in-process and over HTTP (`POST /v1/models`).
#[derive(Debug, Clone)]
pub struct AdmissionRow {
    /// In-process pipeline runs timed.
    pub compiles: usize,
    /// Wall time of the in-process compile loop, in seconds.
    pub compile_seconds: f64,
    /// Full-pipeline admissions per second, in-process.
    pub compiles_per_sec: f64,
    /// Wall time from `POST /v1/models` to the first `/v1/query` response
    /// over loopback HTTP, in seconds.
    pub submit_to_first_query_seconds: f64,
    /// The submission was a 201, the query a 200, and the query body was
    /// byte-identical to the in-process run of the same sources.
    pub ok: bool,
}

/// The model–guide pair the admission benchmark submits.
const ADMISSION_MODEL_SRC: &str = r#"
    proc Model() : real consume latent provide obs {
      let mu <- sample recv latent (Normal(0.0, 1.0));
      let _ <- sample send obs (Normal(mu, 1.0));
      return mu
    }
"#;
const ADMISSION_GUIDE_SRC: &str = r#"
    proc Guide() provide latent {
      let mu <- sample send latent (Normal(0.0, 2.0));
      return ()
    }
"#;

/// Measures model admission: the in-process compile pipeline in a tight
/// loop, then one HTTP submit→first-query round trip against a loopback
/// `ppl-serve`, with the query body verified bit-identical to the
/// in-process run.
pub fn admission_rows(config: &ThroughputConfig) -> Vec<AdmissionRow> {
    use ppl_serve::http::ClientConn;
    use ppl_serve::{api, App, Json, Registry, Server};

    let compiles = 32usize;
    let start = Instant::now();
    for _ in 0..compiles {
        let session =
            Session::from_sources(ADMISSION_MODEL_SRC, "Model", ADMISSION_GUIDE_SRC, "Guide")
                .expect("admission benchmark sources compile");
        std::hint::black_box(&session);
    }
    let compile_seconds = start.elapsed().as_secs_f64();

    // The expected query body, serialised exactly as the route would.
    let method = guide_ppl::Method::Importance { particles: 200 };
    let session = Session::from_sources(ADMISSION_MODEL_SRC, "Model", ADMISSION_GUIDE_SRC, "Guide")
        .expect("admission benchmark sources compile");
    let posterior = session
        .query()
        .observe([ppl_dist::Sample::Real(1.0)])
        .seed(config.seed)
        .run(&method)
        .expect("in-process run");

    let app = App::new(Registry::from_benchmarks(), 16);
    let server = Server::bind("127.0.0.1:0", 2, app.handler()).expect("bind loopback");
    let mut conn = ClientConn::connect(server.local_addr()).expect("loopback connect");
    let submit = Json::Obj(vec![
        ("name".into(), Json::str("admission-bench")),
        ("model_src".into(), Json::str(ADMISSION_MODEL_SRC)),
        ("guide_src".into(), Json::str(ADMISSION_GUIDE_SRC)),
    ])
    .write()
    .expect("finite");

    let start = Instant::now();
    let (submit_status, _, submit_body) = conn
        .send("POST", "/v1/models", Some(&submit))
        .expect("submit request");
    let id = Json::parse(std::str::from_utf8(&submit_body).unwrap_or_default())
        .ok()
        .and_then(|doc| doc.get("id").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_default();
    let query = format!(
        r#"{{"model":"{id}","observations":[1.0],"method":{{"algorithm":"importance","particles":200}},"seed":{}}}"#,
        config.seed
    );
    let (query_status, _, query_body) = conn
        .send("POST", "/v1/query", Some(&query))
        .expect("first query");
    let submit_to_first_query_seconds = start.elapsed().as_secs_f64();
    server.shutdown();

    let expected = api::query_response_json(&id, &method, config.seed, &posterior, 0)
        .write()
        .expect("finite");
    let ok = submit_status == 201 && query_status == 200 && query_body == expected.as_bytes();

    vec![AdmissionRow {
        compiles,
        compile_seconds,
        compiles_per_sec: compiles as f64 / compile_seconds,
        submit_to_first_query_seconds,
        ok,
    }]
}

/// One overload measurement: a fresh-connection storm against a
/// deliberately tiny admission pipeline (one worker, one queue slot), so
/// the server must shed.  The robustness contract under test: shed
/// traffic is always a `429` with `Retry-After` (never a `500`), accepted
/// traffic completes, and a post-storm query is byte-identical to its
/// pre-storm answer (the cache is disabled, so the comparison re-runs
/// inference for real).
#[derive(Debug, Clone)]
pub struct OverloadRow {
    /// Benchmark name served.
    pub name: &'static str,
    /// Concurrent storm clients.
    pub clients: usize,
    /// Requests per client (each on a fresh connection).
    pub requests_per_client: usize,
    /// Importance-sampling particles per request.
    pub particles_per_request: usize,
    /// Storm requests answered `200`.
    pub accepted: usize,
    /// Storm requests shed with `429`.
    pub shed: usize,
    /// Storm responses with a 5xx status (the contract requires zero).
    pub errors_5xx: usize,
    /// Storm requests that failed at the socket level.
    pub connect_errors: usize,
    /// `shed / (accepted + shed)`.
    pub shed_rate: f64,
    /// p99 wall latency of the accepted requests, in milliseconds.
    pub accepted_p99_ms: f64,
    /// Every `429` carried a `Retry-After` header.
    pub retry_after_ok: bool,
    /// The post-storm response was byte-identical to the pre-storm one.
    pub post_storm_identical: bool,
    /// The whole contract held: pre/post queries succeeded, zero 5xx,
    /// zero socket failures, every shed retryable, bytes identical.
    pub ok: bool,
}

/// Drives a connection storm through a one-worker, one-queue-slot
/// loopback server and scores the overload contract (see [`OverloadRow`]).
pub fn overload_rows(config: &ThroughputConfig) -> Vec<OverloadRow> {
    use ppl_serve::http::ClientConn;
    use ppl_serve::{App, Registry, Server, ServerConfig};

    let name = "ex-1";
    let clients = 8usize;
    let requests_per_client = 12usize;
    let particles_per_request = 5_000usize;

    // Cache capacity 0: the post-storm byte-compare must re-run inference,
    // not replay a stored body.
    let app = App::new(Registry::from_benchmarks(), 0);
    let server_config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        shed_counter: Some(app.metrics.queue_sheds_handle()),
        ..ServerConfig::default()
    };
    let server = Server::bind_with_config("127.0.0.1:0", server_config, app.handler())
        .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();
    let body = format!(
        r#"{{"model":"{name}","observations":[0.8],"method":{{"algorithm":"importance","particles":{particles_per_request}}},"seed":{}}}"#,
        config.seed
    );

    // Pre-storm reference answer.
    let pre = {
        let mut conn = ClientConn::connect(addr).expect("loopback connect");
        conn.send("POST", "/v1/query", Some(&body))
            .expect("pre-storm query")
    };

    // The storm: every request opens a fresh connection, so each one
    // passes the admission queue at the door.
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                let mut accepted_ms: Vec<f64> = Vec::new();
                let (mut accepted, mut shed, mut e5, mut retry_missing, mut socket_errors) =
                    (0usize, 0usize, 0usize, 0usize, 0usize);
                for _ in 0..requests_per_client {
                    let started = Instant::now();
                    let sent = ClientConn::connect(addr)
                        .and_then(|mut conn| conn.send("POST", "/v1/query", Some(&body)));
                    match sent {
                        Ok((200, _, _)) => {
                            accepted += 1;
                            accepted_ms.push(started.elapsed().as_secs_f64() * 1e3);
                        }
                        Ok((429, headers, _)) => {
                            shed += 1;
                            if !headers
                                .iter()
                                .any(|(n, _)| n.eq_ignore_ascii_case("retry-after"))
                            {
                                retry_missing += 1;
                            }
                        }
                        Ok((status, _, _)) if status >= 500 => e5 += 1,
                        Ok(_) => {}
                        Err(_) => socket_errors += 1,
                    }
                }
                (
                    accepted,
                    shed,
                    e5,
                    retry_missing,
                    socket_errors,
                    accepted_ms,
                )
            })
        })
        .collect();
    let (mut accepted, mut shed, mut errors_5xx, mut retry_missing, mut connect_errors) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    let mut accepted_ms: Vec<f64> = Vec::new();
    for handle in handles {
        let (a, s, e, r, c, ms) = handle.join().expect("storm client");
        accepted += a;
        shed += s;
        errors_5xx += e;
        retry_missing += r;
        connect_errors += c;
        accepted_ms.extend(ms);
    }

    // Post-storm: the identical query must still produce identical bytes.
    let post = {
        let mut conn = ClientConn::connect(addr).expect("loopback reconnect");
        conn.send("POST", "/v1/query", Some(&body))
            .expect("post-storm query")
    };
    server.shutdown();

    accepted_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let accepted_p99_ms = if accepted_ms.is_empty() {
        0.0
    } else {
        let idx = ((accepted_ms.len() as f64 * 0.99).ceil() as usize).clamp(1, accepted_ms.len());
        accepted_ms[idx - 1]
    };
    let answered = accepted + shed;
    let shed_rate = if answered > 0 {
        shed as f64 / answered as f64
    } else {
        0.0
    };
    let retry_after_ok = retry_missing == 0;
    let post_storm_identical = pre.0 == 200 && post.0 == 200 && pre.2 == post.2;
    let ok = post_storm_identical
        && errors_5xx == 0
        && connect_errors == 0
        && retry_after_ok
        && accepted >= 1;

    vec![OverloadRow {
        name,
        clients,
        requests_per_client,
        particles_per_request,
        accepted,
        shed,
        errors_5xx,
        connect_errors,
        shed_rate,
        accepted_p99_ms,
        retry_after_ok,
        post_storm_identical,
        ok,
    }]
}

/// One amortized-inference measurement: the wall cost of a cold VI query
/// (fit + draw in one request) versus artifact-warm queries that reuse a
/// persisted fit through `"artifact": "a-…"` — the serving payoff of the
/// PR 8 artifact store.  The response cache is disabled so every warm
/// request genuinely re-runs the draw pass; the speedup is pure fit
/// amortization, not response memoisation.
#[derive(Debug, Clone)]
pub struct AmortizationRow {
    /// Benchmark name served.
    pub name: &'static str,
    /// VI fit iterations of the measured configuration.
    pub fit_iterations: usize,
    /// ELBO samples per iteration.
    pub samples_per_iteration: usize,
    /// Posterior draw particles per query.
    pub draw_particles: usize,
    /// Warm requests measured.
    pub requests: usize,
    /// Wall time of one cold query (fit + draw), in seconds.
    pub cold_seconds: f64,
    /// Wall time of the warm pass, in seconds.
    pub warm_seconds: f64,
    /// Cold queries per second (1 / cold_seconds).
    pub cold_queries_per_sec: f64,
    /// Warm queries per second.
    pub warm_queries_per_sec: f64,
    /// `warm_queries_per_sec / cold_queries_per_sec` — the amortization
    /// factor (the acceptance bar is ≥ 10×).
    pub amortization: f64,
    /// Artifacts resident in the store after the pass.
    pub artifacts: u64,
    /// Bytes of canonical artifact JSON resident in the store.
    pub store_bytes: u64,
    /// Warm starts the store served during the pass.
    pub warm_starts: u64,
    /// Every response was a 200, every warm body was byte-identical to the
    /// cold one, and the warm pass ran **zero** VI fit executions
    /// (verified against `ppl_inference::counters`).
    pub ok: bool,
}

/// Measures amortized inference over loopback HTTP: one cold VI query
/// (fit + draw), one `POST /v1/fit`, then a pass of artifact-warm queries
/// with the byte-identity and the zero-fit-executions invariant
/// re-verified per request.
pub fn amortization_rows(config: &ThroughputConfig) -> Vec<AmortizationRow> {
    use ppl_serve::http::ClientConn;
    use ppl_serve::{App, Registry, Server};
    use ppl_store::Store;

    let name = "weight";
    let fit_iterations = 100usize;
    let samples_per_iteration = 8usize;
    let draw_particles = 200usize;
    let requests = 8usize;

    // Cache capacity 0: warm requests must re-run the draw pass, so the
    // measured ratio is fit amortization alone.
    let store = std::sync::Arc::new(Store::in_memory(16));
    let app = App::with_store(Registry::from_benchmarks(), 0, config.block, store);
    let server = Server::bind("127.0.0.1:0", 2, app.handler()).expect("bind loopback");
    let mut conn = ClientConn::connect(server.local_addr()).expect("loopback connect");

    let cold_body = format!(
        r#"{{"model":"{name}","observations":[9.0,9.0],"seed":{},
            "method":{{"algorithm":"vi","iterations":{fit_iterations},
                       "samples_per_iteration":{samples_per_iteration},
                       "draw_particles":{draw_particles}}}}}"#,
        config.seed
    );
    let start = Instant::now();
    let (cold_status, _, cold_response) = conn
        .send("POST", "/v1/query", Some(&cold_body))
        .expect("cold query");
    let cold_seconds = start.elapsed().as_secs_f64();
    let mut ok = cold_status == 200;

    let fit_body = format!(
        r#"{{"model":"{name}","observations":[9.0,9.0],"seed":{},
            "fit":{{"iterations":{fit_iterations},
                    "samples_per_iteration":{samples_per_iteration}}}}}"#,
        config.seed
    );
    let (fit_status, _, fit_response) = conn
        .send("POST", "/v1/fit", Some(&fit_body))
        .expect("fit request");
    ok &= fit_status == 201;
    let id = ppl_serve::Json::parse(std::str::from_utf8(&fit_response).unwrap_or_default())
        .ok()
        .and_then(|doc| {
            doc.get("id")
                .and_then(ppl_serve::Json::as_str)
                .map(str::to_string)
        })
        .unwrap_or_default();

    let warm_body =
        format!(r#"{{"model":"{name}","artifact":"{id}","draw_particles":{draw_particles}}}"#);
    let fit_executions_before = ppl_inference::counters::vi_fit_executions();
    let start = Instant::now();
    for _ in 0..requests {
        let (status, _, response) = conn
            .send("POST", "/v1/query", Some(&warm_body))
            .expect("warm query");
        ok &= status == 200 && response == cold_response;
    }
    let warm_seconds = start.elapsed().as_secs_f64();
    // The loopback server runs in-process, so the counter covers it: the
    // warm pass must not have scheduled a single VI fit execution.
    ok &= ppl_inference::counters::vi_fit_executions() == fit_executions_before;
    let artifacts = app.store.len() as u64;
    let store_bytes = app.store.bytes();
    let warm_starts = app.store.warm_starts();
    server.shutdown();

    let cold_queries_per_sec = 1.0 / cold_seconds;
    let warm_queries_per_sec = requests as f64 / warm_seconds;
    vec![AmortizationRow {
        name,
        fit_iterations,
        samples_per_iteration,
        draw_particles,
        requests,
        cold_seconds,
        warm_seconds,
        cold_queries_per_sec,
        warm_queries_per_sec,
        amortization: warm_queries_per_sec / cold_queries_per_sec,
        artifacts,
        store_bytes,
        warm_starts,
        ok,
    }]
}

/// Times each inference engine once on a reference workload.
pub fn engine_timings(config: &ThroughputConfig) -> Vec<EngineTiming> {
    let mut out = Vec::new();

    // IS on ex-1 (threads as configured).
    {
        let session = Session::from_benchmark("ex-1").expect("ex-1");
        let b = ppl_models::benchmark("ex-1").expect("ex-1");
        let executor = session.executor(b.observations.clone());
        let mut rng = Pcg32::seed_from_u64(config.seed);
        let start = Instant::now();
        let result = ImportanceSampler::new(config.particles)
            .with_threads(config.threads)
            .run(&executor, &session.spec(), &mut rng)
            .expect("IS");
        out.push(EngineTiming {
            engine: "IS",
            benchmark: "ex-1",
            wall_seconds: start.elapsed().as_secs_f64(),
            metric: "ess",
            value: result.ess,
        });
    }

    // VI on weight (mini-batches through the same parallel driver).
    {
        let session = Session::from_benchmark("weight").expect("weight");
        let b = ppl_models::benchmark("weight").expect("weight");
        let executor = session.executor(b.observations.clone());
        let params: Vec<ParamSpec> = b
            .guide_params
            .iter()
            .map(|p| {
                if p.positive {
                    ParamSpec::positive(p.name, p.init)
                } else {
                    ParamSpec::unconstrained(p.name, p.init)
                }
            })
            .collect();
        let vi_config = ViConfig {
            iterations: 60,
            samples_per_iteration: 8,
            num_threads: config.threads,
            ..ViConfig::default()
        };
        let mut rng = Pcg32::seed_from_u64(config.seed);
        let start = Instant::now();
        let result = VariationalInference::new(vi_config)
            .run(&executor, &session.spec(), &params, &mut rng)
            .expect("VI");
        out.push(EngineTiming {
            engine: "VI",
            benchmark: "weight",
            wall_seconds: start.elapsed().as_secs_f64(),
            metric: "final_elbo",
            value: result.final_elbo(),
        });
    }

    // MCMC on ex-1 (sequential chain over the borrowed-replay path).
    {
        let session = Session::from_benchmark("ex-1").expect("ex-1");
        let b = ppl_models::benchmark("ex-1").expect("ex-1");
        let executor = session.executor(b.observations.clone());
        let iterations = (config.particles / 4).max(100);
        let mut rng = Pcg32::seed_from_u64(config.seed);
        let start = Instant::now();
        let result = IndependenceMh::new(iterations, iterations / 10)
            .run(&executor, &session.spec(), &mut rng)
            .expect("MCMC");
        out.push(EngineTiming {
            engine: "MCMC",
            benchmark: "ex-1",
            wall_seconds: start.elapsed().as_secs_f64(),
            metric: "acceptance_rate",
            value: result.acceptance_rate,
        });
    }

    out
}

/// Serialises the measurements as the `BENCH_inference.json` document.
#[allow(clippy::too_many_arguments)] // one slice per report section, by design
pub fn bench_json(
    config: &ThroughputConfig,
    rows: &[ThroughputRow],
    blocks: &[BlockRow],
    engines: &[EngineTiming],
    serving: &[ServingRow],
    mcmc: &[McmcRow],
    http: &[HttpRow],
    admission: &[AdmissionRow],
    amortization: &[AmortizationRow],
    overload: &[OverloadRow],
    observability: &[ObservabilityRow],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"ppl-bench/inference/v8\",");
    let _ = writeln!(s, "  \"particles\": {},", config.particles);
    let _ = writeln!(s, "  \"threads\": {},", config.threads);
    let _ = writeln!(s, "  \"block\": {},", config.block);
    let _ = writeln!(s, "  \"seed\": {},", config.seed);
    // Provenance: parallel speedups are only meaningful relative to the
    // cores the measuring host actually had.
    let _ = writeln!(
        s,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    s.push_str("  \"throughput\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"algorithm\": \"IS\", \"particles\": {}, \"threads\": {}, \
             \"block\": {}, \"seq_seconds\": {}, \"par_seconds\": {}, \"seq_particles_per_sec\": {}, \
             \"par_particles_per_sec\": {}, \"speedup\": {}, \"ess\": {}, \"log_evidence\": {}, \
             \"bit_identical\": {}, \"allocs_per_particle\": {}}}",
            r.name,
            r.particles,
            r.threads,
            r.block,
            json_f64(r.seq_seconds),
            json_f64(r.par_seconds),
            json_f64(r.seq_particles_per_sec),
            json_f64(r.par_particles_per_sec),
            json_f64(r.speedup),
            json_f64(r.ess),
            json_f64(r.log_evidence),
            r.bit_identical,
            json_f64(r.allocs_per_particle),
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"blocks\": [\n");
    for (i, r) in blocks.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"algorithm\": \"IS\", \"block\": {}, \"particles\": {}, \
             \"wall_seconds\": {}, \"particles_per_sec\": {}, \"speedup_vs_scalar\": {}, \
             \"bit_identical\": {}}}",
            r.name,
            r.block,
            r.particles,
            json_f64(r.wall_seconds),
            json_f64(r.particles_per_sec),
            json_f64(r.speedup_vs_scalar),
            r.bit_identical,
        );
        s.push_str(if i + 1 < blocks.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"mcmc\": [\n");
    for (i, r) in mcmc.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"algorithm\": \"MH\", \"iterations\": {}, \
             \"wall_seconds\": {}, \"proposals_per_sec\": {}, \"acceptance_rate\": {}, \
             \"allocs_per_proposal\": {}}}",
            r.name,
            r.iterations,
            json_f64(r.wall_seconds),
            json_f64(r.proposals_per_sec),
            json_f64(r.acceptance_rate),
            json_f64(r.allocs_per_proposal),
        );
        s.push_str(if i + 1 < mcmc.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"serving\": [\n");
    for (i, r) in serving.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"queries\": {}, \"particles_per_query\": {}, \
             \"batch_threads\": {}, \"seq_seconds\": {}, \"par_seconds\": {}, \
             \"seq_queries_per_sec\": {}, \"par_queries_per_sec\": {}, \"speedup\": {}, \
             \"bit_identical\": {}}}",
            r.name,
            r.queries,
            r.particles_per_query,
            r.batch_threads,
            json_f64(r.seq_seconds),
            json_f64(r.par_seconds),
            json_f64(r.seq_queries_per_sec),
            json_f64(r.par_queries_per_sec),
            json_f64(r.speedup),
            r.bit_identical,
        );
        s.push_str(if i + 1 < serving.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"http\": [\n");
    for (i, r) in http.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"requests\": {}, \"particles_per_request\": {}, \
             \"cold_seconds\": {}, \"warm_seconds\": {}, \"cold_requests_per_sec\": {}, \
             \"warm_requests_per_sec\": {}, \"cache_hit_rate\": {}, \"ok\": {}}}",
            r.name,
            r.requests,
            r.particles_per_request,
            json_f64(r.cold_seconds),
            json_f64(r.warm_seconds),
            json_f64(r.cold_requests_per_sec),
            json_f64(r.warm_requests_per_sec),
            json_f64(r.cache_hit_rate),
            r.ok,
        );
        s.push_str(if i + 1 < http.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"admission\": [\n");
    for (i, r) in admission.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"compiles\": {}, \"compile_seconds\": {}, \"compiles_per_sec\": {}, \
             \"submit_to_first_query_seconds\": {}, \"ok\": {}}}",
            r.compiles,
            json_f64(r.compile_seconds),
            json_f64(r.compiles_per_sec),
            json_f64(r.submit_to_first_query_seconds),
            r.ok,
        );
        s.push_str(if i + 1 < admission.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"amortization\": [\n");
    for (i, r) in amortization.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"fit_iterations\": {}, \"samples_per_iteration\": {}, \
             \"draw_particles\": {}, \"requests\": {}, \"cold_seconds\": {}, \
             \"warm_seconds\": {}, \"cold_queries_per_sec\": {}, \"warm_queries_per_sec\": {}, \
             \"amortization\": {}, \"ok\": {}}}",
            r.name,
            r.fit_iterations,
            r.samples_per_iteration,
            r.draw_particles,
            r.requests,
            json_f64(r.cold_seconds),
            json_f64(r.warm_seconds),
            json_f64(r.cold_queries_per_sec),
            json_f64(r.warm_queries_per_sec),
            json_f64(r.amortization),
            r.ok,
        );
        s.push_str(if i + 1 < amortization.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"overload\": [\n");
    for (i, r) in overload.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"clients\": {}, \"requests_per_client\": {}, \
             \"particles_per_request\": {}, \"accepted\": {}, \"shed\": {}, \
             \"errors_5xx\": {}, \"connect_errors\": {}, \"shed_rate\": {}, \
             \"accepted_p99_ms\": {}, \"retry_after_ok\": {}, \"post_storm_identical\": {}, \
             \"ok\": {}}}",
            r.name,
            r.clients,
            r.requests_per_client,
            r.particles_per_request,
            r.accepted,
            r.shed,
            r.errors_5xx,
            r.connect_errors,
            json_f64(r.shed_rate),
            json_f64(r.accepted_p99_ms),
            r.retry_after_ok,
            r.post_storm_identical,
            r.ok,
        );
        s.push_str(if i + 1 < overload.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"observability\": [\n");
    for (i, r) in observability.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"requests\": {}, \"particles_per_request\": {}, \
             \"off_seconds\": {}, \"on_seconds\": {}, \"off_requests_per_sec\": {}, \
             \"on_requests_per_sec\": {}, \"tracing_on_overhead_pct\": {}, \"ok\": {}}}",
            r.name,
            r.requests,
            r.particles_per_request,
            json_f64(r.off_seconds),
            json_f64(r.on_seconds),
            json_f64(r.off_requests_per_sec),
            json_f64(r.on_requests_per_sec),
            json_f64(r.tracing_on_overhead_pct),
            r.ok,
        );
        s.push_str(if i + 1 < observability.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    // Store gauges from the amortization run (the only scenario that
    // exercises the artifact store).
    let (artifacts, store_bytes, warm_starts) = amortization
        .first()
        .map_or((0, 0, 0), |r| (r.artifacts, r.store_bytes, r.warm_starts));
    let _ = writeln!(
        s,
        "  \"store\": {{\"artifacts\": {artifacts}, \"bytes\": {store_bytes}, \
         \"warm_starts\": {warm_starts}}},"
    );
    s.push_str("  \"engines\": [\n");
    for (i, e) in engines.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"engine\": \"{}\", \"benchmark\": \"{}\", \"wall_seconds\": {}, \
             \"metric\": \"{}\", \"value\": {}}}",
            e.engine,
            e.benchmark,
            json_f64(e.wall_seconds),
            e.metric,
            json_f64(e.value),
        );
        s.push_str(if i + 1 < engines.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Formats an `f64` as a JSON number (JSON has no NaN/∞, so those become
/// `null`).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rows_are_bit_identical_across_thread_counts() {
        let config = ThroughputConfig {
            particles: 400,
            threads: 4,
            block: DEFAULT_BLOCK,
            seed: 7,
        };
        let rows = throughput_rows(&config);
        assert_eq!(rows.len(), 3, "the Table 2 IS subset");
        for r in &rows {
            assert!(r.bit_identical, "{}: thread count changed results", r.name);
            assert!(r.seq_particles_per_sec > 0.0);
            assert!(r.par_particles_per_sec > 0.0);
            assert!(r.speedup.is_finite() && r.speedup > 0.0);
            assert!(r.log_evidence.is_finite(), "{}", r.name);
            assert!(r.ess > 1.0, "{}: ess {}", r.name, r.ess);
            // The lib test binary does not install the counting allocator,
            // so the metric must report unknown rather than a fake zero.
            assert!(r.allocs_per_particle.is_nan() || r.allocs_per_particle >= 0.0);
        }
    }

    #[test]
    fn block_rows_scan_sizes_and_verify_bit_identity() {
        let config = ThroughputConfig {
            particles: 400,
            threads: 1,
            block: DEFAULT_BLOCK,
            seed: 21,
        };
        let rows = block_rows(&config);
        assert_eq!(rows.len(), 3 * BLOCK_SCAN.len());
        for r in &rows {
            assert!(r.bit_identical, "{} block {} diverged", r.name, r.block);
            assert!(r.particles_per_sec > 0.0);
            assert!(r.speedup_vs_scalar.is_finite() && r.speedup_vs_scalar > 0.0);
        }
        // Every benchmark leads with its scalar reference row.
        for chunk in rows.chunks(BLOCK_SCAN.len()) {
            assert_eq!(chunk[0].block, 1);
            assert!((chunk[0].speedup_vs_scalar - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mcmc_rows_measure_proposal_throughput() {
        let config = ThroughputConfig {
            particles: 400,
            threads: 4,
            block: DEFAULT_BLOCK,
            seed: 13,
        };
        let rows = mcmc_rows(&config);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.iterations, 200);
            assert!(r.proposals_per_sec > 0.0, "{}", r.name);
            assert!(
                (0.0..=1.0).contains(&r.acceptance_rate),
                "{}: acceptance {}",
                r.name,
                r.acceptance_rate
            );
            assert!(r.allocs_per_proposal.is_nan() || r.allocs_per_proposal >= 0.0);
        }
    }

    #[test]
    fn serving_rows_are_bit_identical_across_batch_thread_counts() {
        let config = ThroughputConfig {
            particles: 1_600,
            threads: 4,
            block: DEFAULT_BLOCK,
            seed: 99,
        };
        let rows = serving_rows(&config);
        assert_eq!(rows.len(), 1);
        for r in &rows {
            assert!(r.bit_identical, "{}: batch threads changed results", r.name);
            assert_eq!(r.queries, 16);
            assert!(r.particles_per_query >= 100);
            assert!(r.seq_queries_per_sec > 0.0);
            assert!(r.par_queries_per_sec > 0.0);
            assert!(r.speedup.is_finite() && r.speedup > 0.0);
        }
    }

    #[test]
    fn http_rows_serve_cold_and_warm_over_loopback() {
        let config = ThroughputConfig {
            particles: 3_200,
            threads: 2,
            block: DEFAULT_BLOCK,
            seed: 5,
        };
        let rows = http_rows(&config);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.ok, "a response failed or a warm body diverged");
        assert_eq!(r.requests, 32);
        assert!(r.cold_requests_per_sec > 0.0);
        assert!(r.warm_requests_per_sec > 0.0);
        // One full miss pass then one full hit pass.
        assert!(
            (r.cache_hit_rate - 0.5).abs() < 1e-9,
            "{}",
            r.cache_hit_rate
        );
    }

    #[test]
    fn admission_rows_measure_the_pipeline_and_verify_bit_identity() {
        let config = ThroughputConfig {
            particles: 200,
            threads: 2,
            block: DEFAULT_BLOCK,
            seed: 17,
        };
        let rows = admission_rows(&config);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.ok, "submission or query failed, or the body diverged");
        assert_eq!(r.compiles, 32);
        assert!(r.compiles_per_sec > 0.0);
        assert!(r.submit_to_first_query_seconds > 0.0);
    }

    #[test]
    fn amortization_rows_reuse_the_fit_with_byte_identity() {
        let config = ThroughputConfig {
            particles: 200,
            threads: 2,
            block: DEFAULT_BLOCK,
            seed: 23,
        };
        let rows = amortization_rows(&config);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(
            r.ok,
            "a warm body diverged from the cold one, or the warm pass ran fit executions"
        );
        assert_eq!(r.artifacts, 1);
        assert!(r.store_bytes > 0);
        assert_eq!(r.warm_starts, r.requests as u64);
        // The wall-clock ratio is load-dependent, so the test only demands
        // amortization > 1; the recorded BENCH row carries the real factor.
        assert!(r.amortization > 1.0, "amortization {}", r.amortization);
    }

    #[test]
    fn overload_rows_shed_retryable_429s_and_keep_post_storm_bytes_identical() {
        let config = ThroughputConfig {
            particles: 200,
            threads: 2,
            block: DEFAULT_BLOCK,
            seed: 29,
        };
        let rows = overload_rows(&config);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.ok, "overload contract violated: {r:?}");
        assert_eq!(r.errors_5xx, 0, "overload produced a 5xx");
        assert_eq!(r.connect_errors, 0, "overload dropped connections");
        assert!(r.retry_after_ok, "a 429 was missing Retry-After");
        assert!(r.post_storm_identical, "post-storm bytes diverged");
        assert!(r.accepted >= 1, "nothing was accepted");
        // One worker and a one-slot queue against 8 concurrent clients:
        // the storm must actually shed, or the bench measures nothing.
        assert!(r.shed >= 1, "the storm never overflowed the queue");
    }

    #[test]
    fn bench_json_is_well_formed() {
        let config = ThroughputConfig {
            particles: 200,
            threads: 2,
            block: DEFAULT_BLOCK,
            seed: 3,
        };
        let rows = throughput_rows(&config);
        let blocks = block_rows(&config);
        let engines = engine_timings(&config);
        assert_eq!(engines.len(), 3);
        let serving = serving_rows(&config);
        let mcmc = mcmc_rows(&config);
        let http = http_rows(&config);
        let admission = admission_rows(&config);
        let amortization = amortization_rows(&config);
        let overload = overload_rows(&config);
        let observability = observability_rows(&config);
        let json = bench_json(
            &config,
            &rows,
            &blocks,
            &engines,
            &serving,
            &mcmc,
            &http,
            &admission,
            &amortization,
            &overload,
            &observability,
        );
        // Structural sanity without a JSON parser: balanced braces/brackets
        // and the keys CI greps for.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"schema\": \"ppl-bench/inference/v8\"",
            "\"amortization\"",
            "\"overload\"",
            "\"observability\"",
            "\"tracing_on_overhead_pct\"",
            "\"off_requests_per_sec\"",
            "\"on_requests_per_sec\"",
            "\"shed_rate\"",
            "\"accepted_p99_ms\"",
            "\"retry_after_ok\": true",
            "\"post_storm_identical\": true",
            "\"errors_5xx\": 0",
            "\"warm_queries_per_sec\"",
            "\"store\"",
            "\"warm_starts\"",
            "\"host_cpus\"",
            "\"block\": 64",
            "\"blocks\"",
            "\"speedup_vs_scalar\"",
            "\"throughput\"",
            "\"serving\"",
            "\"mcmc\"",
            "\"http\"",
            "\"cold_requests_per_sec\"",
            "\"warm_requests_per_sec\"",
            "\"cache_hit_rate\"",
            "\"ok\": true",
            "\"admission\"",
            "\"compiles_per_sec\"",
            "\"submit_to_first_query_seconds\"",
            "\"engines\"",
            "\"par_particles_per_sec\"",
            "\"par_queries_per_sec\"",
            "\"speedup\"",
            "\"bit_identical\": true",
            "\"allocs_per_particle\"",
            "\"proposals_per_sec\"",
            "\"allocs_per_proposal\"",
            "\"engine\": \"IS\"",
            "\"engine\": \"VI\"",
            "\"engine\": \"MCMC\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("NaN"));
    }
}
