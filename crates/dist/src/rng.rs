//! A small, deterministic random-number generator.
//!
//! Inference results in this repository must be reproducible bit-for-bit
//! across runs and platforms (the benchmark harness re-runs the coroutine
//! and handwritten paths with the same seed and compares their estimates),
//! so the crate ships its own PCG-XSH-RR 64/32 generator instead of pulling
//! in an external RNG crate.  The algorithm is the reference `pcg32` of
//! O'Neill, *PCG: A Family of Simple Fast Space-Efficient Statistically
//! Good Algorithms for Random Number Generation* (2014).

/// The default stream selector, chosen once and fixed forever so that
/// [`Pcg32::seed_from_u64`] is a pure function of its seed.
const DEFAULT_STREAM: u64 = 0xda3e_39cb_94b9_5bdb;

const MULTIPLIER: u64 = 6_364_136_223_846_793_005;

/// A PCG-XSH-RR 64/32 generator: 64 bits of state, 32 bits of output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator from an explicit state and stream (the reference
    /// `pcg32_srandom` initialisation).
    pub fn new(init_state: u64, init_stream: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (init_stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(init_state);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a single seed on the default stream.  The
    /// same seed always yields the same stream of values.
    pub fn seed_from_u64(seed: u64) -> Pcg32 {
        Pcg32::new(seed, DEFAULT_STREAM)
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 uniformly random bits (two 32-bit outputs).
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// A uniform draw from the half-open interval `[0, 1)` with 53 bits of
    /// precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from the *open* interval `(0, 1)`: never exactly zero
    /// or one, so logarithms and open-interval supports (`ureal`) are safe.
    pub fn next_open01(&mut self) -> f64 {
        (self.next_u32() as f64 + 0.5) * (1.0 / (1u64 << 32) as f64)
    }

    /// Derives a statistically independent generator for substream
    /// `stream_id` without advancing `self`.
    ///
    /// The derivation is a pure function of the parent's current state and
    /// the stream id, so a parallel particle driver can hand particle `i`
    /// the generator `master.split(i)` from any thread and obtain the same
    /// stream regardless of how particles are scheduled — this is what makes
    /// inference results independent of the thread count.  Both the state
    /// and the PCG stream selector are mixed through SplitMix64 so that
    /// consecutive stream ids land in unrelated regions of the state space.
    pub fn split(&self, stream_id: u64) -> Pcg32 {
        let mixed = splitmix64(stream_id.wrapping_add(0xa076_1d64_78bd_642f));
        Pcg32::new(self.state ^ mixed, splitmix64(self.inc ^ mixed))
    }

    /// The raw `(state, inc)` words of the generator, for checkpointing.
    ///
    /// Together with [`Pcg32::from_state_parts`] this snapshots the exact
    /// position in the stream: restoring the parts and drawing yields the
    /// same values the original generator would have produced next.  The
    /// artifact store uses this to resume a fitted guide's draw pass
    /// bit-exactly after a restart.
    pub fn state_parts(&self) -> (u64, u64) {
        (self.state, self.inc)
    }

    /// Rebuilds a generator from raw words captured by
    /// [`Pcg32::state_parts`].
    ///
    /// Unlike [`Pcg32::new`], this does **not** run the `pcg32_srandom`
    /// initialisation sequence — the words are installed verbatim, so the
    /// restored generator continues the original stream mid-flight.
    pub fn from_state_parts(state: u64, inc: u64) -> Pcg32 {
        Pcg32 { state, inc }
    }

    /// A uniform draw from `{0, 1, …, n - 1}` by rejection sampling (no
    /// modulo bias).  `n` must be positive.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires a positive bound");
        if n == 1 {
            return 0;
        }
        // Reject draws from the tail of the 64-bit range that would bias the
        // result; the loop terminates with probability one.
        let zone = u64::MAX - (u64::MAX % n + 1) % n;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % n;
            }
        }
    }
}

/// SplitMix64 (Steele, Lea, Flood; *Fast Splittable Pseudorandom Number
/// Generators*, OOPSLA 2014) — the standard finaliser used to decorrelate
/// substream seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_the_same_stream() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = Pcg32::seed_from_u64(43);
        let first: Vec<u32> = (0..8)
            .map(|_| Pcg32::seed_from_u64(42).next_u32())
            .collect();
        assert!(first.iter().all(|&x| x == first[0]));
        // A different seed must diverge within a few outputs.
        let mut a = Pcg32::seed_from_u64(42);
        assert!((0..8).any(|_| a.next_u32() != c.next_u32()));
    }

    #[test]
    fn float_draws_respect_their_intervals() {
        let mut rng = Pcg32::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_open01();
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn next_below_stays_in_range_and_hits_every_value() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let k = rng.next_below(5);
            assert!(k < 5);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.next_below(1), 0);
    }

    #[test]
    fn split_is_pure_and_deterministic() {
        let parent = Pcg32::seed_from_u64(42);
        let snapshot = parent.clone();
        let mut a = parent.split(7);
        let mut b = parent.split(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        // Splitting does not advance the parent.
        assert_eq!(parent, snapshot);
        // The same stream id from the same parent state always yields the
        // same substream, even via a clone.
        let mut c = snapshot.split(7);
        let mut a = parent.split(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), c.next_u32());
        }
    }

    #[test]
    fn split_substreams_are_decorrelated() {
        let parent = Pcg32::seed_from_u64(1);
        // Adjacent stream ids must diverge immediately and have sane means.
        let mut streams: Vec<Pcg32> = (0..8).map(|i| parent.split(i)).collect();
        let firsts: Vec<u32> = streams.iter_mut().map(|r| r.next_u32()).collect();
        for i in 0..firsts.len() {
            for j in (i + 1)..firsts.len() {
                assert_ne!(firsts[i], firsts[j], "streams {i} and {j} collide");
            }
        }
        for (i, rng) in streams.iter_mut().enumerate() {
            let mean: f64 = (0..10_000).map(|_| rng.next_f64()).sum::<f64>() / 10_000.0;
            assert!((mean - 0.5).abs() < 0.02, "stream {i} mean {mean}");
        }
        // A different parent state yields different substreams.
        let mut from_other = Pcg32::seed_from_u64(2).split(0);
        let mut from_parent = parent.split(0);
        assert_ne!(from_other.next_u32(), from_parent.next_u32());
    }

    #[test]
    fn state_parts_round_trip_resumes_the_stream_exactly() {
        let mut rng = Pcg32::seed_from_u64(0xD0_0DAD);
        for _ in 0..17 {
            rng.next_u32();
        }
        let (state, inc) = rng.state_parts();
        let mut resumed = Pcg32::from_state_parts(state, inc);
        for _ in 0..1_000 {
            assert_eq!(rng.next_u32(), resumed.next_u32());
        }
        // `new` runs the srandom init sequence, so it must NOT equal a raw
        // restore of the same words — the distinction the checkpoint API
        // exists for.
        assert_ne!(
            Pcg32::new(state, inc >> 1).state_parts(),
            (state, inc),
            "new() seeds, from_state_parts() restores"
        );
    }

    #[test]
    fn uniform_draws_have_a_plausible_mean() {
        let mut rng = Pcg32::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
