//! Base-type checking and **guide types** for the coroutine-based PPL of
//! *Sound Probabilistic Inference via Guide Types* (PLDI 2021).
//!
//! The crate implements:
//!
//! * the simply-typed checker for the deterministic fragment
//!   ([`base`], rules `TE:*` of the paper's Fig. 12);
//! * guide types and type-operator definitions ([`guide`], §4);
//! * backward guide-type checking of commands ([`check`], rules `TM:*`);
//! * the whole-program type-inference algorithm and the model–guide
//!   compatibility check that certifies absolute continuity
//!   ([`infer`], §4 and Theorem 5.2).
//!
//! # Example
//!
//! ```
//! use ppl_syntax::parse_program;
//! use ppl_types::{infer_program, check_model_guide};
//!
//! let model = parse_program(r#"
//!     proc Model() : real consume latent provide obs {
//!       let v <- sample recv latent (Gamma(2.0, 1.0));
//!       if send latent (v < 2.0) {
//!         let _ <- sample send obs (Normal(-1.0, 1.0));
//!         return v
//!       } else {
//!         let m <- sample recv latent (Beta(3.0, 1.0));
//!         let _ <- sample send obs (Normal(m, 1.0));
//!         return v
//!       }
//!     }
//! "#).unwrap();
//! let guide = parse_program(r#"
//!     proc Guide() provide latent {
//!       let v <- sample send latent (Gamma(1.0, 1.0));
//!       if recv latent { return () } else {
//!         let _ <- sample send latent (Unif);
//!         return ()
//!       }
//!     }
//! "#).unwrap();
//! let menv = infer_program(&model)?;
//! let genv = infer_program(&guide)?;
//! let compat = check_model_guide(&menv, &"Model".into(), &genv, &"Guide".into())?;
//! assert!(compat.compatible);
//! # Ok::<(), ppl_types::TypeError>(())
//! ```

pub mod base;
pub mod check;
pub mod error;
pub mod guide;
pub mod infer;
pub mod obs;

pub use base::{check_expr, infer_expr, is_subtype, join, TypingCtx};
pub use check::{
    base_type_of_cmd, check_cmd, ChannelTypes, CheckCtx, CmdTyping, ProcSignature, Sigma,
};
pub use error::{code as types_error_code, TypeError};
pub use guide::{GuideType, TypeDef, TypeDefs};
pub use infer::{check_model_guide, infer_program, Compatibility, TypeEnv};
pub use obs::{carrier_admits, validate_observations, ObsValue, ObsViolation};
