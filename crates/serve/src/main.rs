//! The `ppl-serve` binary: boot the registry, bind, and serve until
//! killed.
//!
//! ```text
//! ppl-serve [--addr HOST:PORT] [--workers N] [--cache N] [--user-models N] [--block N]
//! ```
//!
//! `--addr` defaults to `127.0.0.1:8080`; use port 0 to bind an ephemeral
//! port (the bound address is printed, which is how the CI smoke step
//! finds it).  `--workers` sets the connection-handling thread count
//! (default 4) and `--cache` the response-cache capacity (default 256
//! responses; 0 disables caching).  `--user-models` caps the table of
//! models admitted through `POST /v1/models` (default 32; 0 disables
//! submissions — the server then serves builtins only).  `--block` sets
//! the default vectorised-execution block size (default 64); requests may
//! override it per-query, and it never changes results — block size is a
//! pure performance knob.

use ppl_serve::{App, Registry, Server};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut workers = 4usize;
    let mut cache = 256usize;
    let mut user_models = ppl_serve::registry::DEFAULT_USER_MODEL_CAPACITY;
    let mut block = ppl_inference::DEFAULT_BLOCK;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return usage("--addr expects HOST:PORT"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = n,
                _ => return usage("--workers expects a positive integer"),
            },
            "--cache" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cache = n,
                None => return usage("--cache expects a non-negative integer"),
            },
            "--user-models" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => user_models = n,
                None => return usage("--user-models expects a non-negative integer"),
            },
            "--block" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => block = n,
                _ => return usage("--block expects a positive integer"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let registry = Registry::from_benchmarks().with_user_capacity(user_models);
    println!("ppl-serve: {} models compiled", registry.len());
    let app = App::with_block(registry, cache, block);
    let server = match Server::bind(addr.as_str(), workers, app.handler()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("ppl-serve listening on http://{}", server.local_addr());
    // The smoke step greps this line from a pipe; make sure it arrives.
    let _ = std::io::stdout().flush();

    // Serve until the process is killed; the server owns the threads.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3_600));
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: ppl-serve [--addr HOST:PORT] [--workers N] [--cache N] [--user-models N] [--block N]"
    );
    ExitCode::FAILURE
}
