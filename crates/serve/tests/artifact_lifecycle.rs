//! Loopback tests for amortized inference (`POST /v1/fit` and
//! artifact-warm `/v1/query`).
//!
//! The acceptance-critical properties:
//!
//! * `/v1/fit` persists a content-addressed artifact and is idempotent —
//!   re-fitting the identical request returns `200 created:false` with
//!   **zero** additional VI fit executions;
//! * a `/v1/query` carrying `"artifact"` returns bytes **identical** to
//!   the fresh fit-then-draw query at the artifact's seed, again with zero
//!   fit executions;
//! * a *restarted* server (new `App` over the same `--store-dir`)
//!   warm-starts its index from disk and serves the same bytes without
//!   refitting;
//! * artifact errors are structured 400s/404s with stable codes
//!   (`artifact.not_found`, `artifact.model_mismatch`), and `/v1/batch`
//!   rejects artifact requests outright.
//!
//! Everything lives in one `#[test]` because the proofs delta the
//! process-wide `ppl_inference::counters`.

use ppl_inference::counters;
use ppl_serve::http::ClientConn;
use ppl_serve::{App, Json, Registry, Server};
use ppl_store::Store;
use std::path::Path;
use std::sync::Arc;

fn boot(dir: &Path) -> (Arc<App>, Server) {
    let registry = Registry::from_benchmarks();
    let store = Arc::new(Store::open(dir, 16).expect("store opens"));
    let app = App::with_store(registry, 64, ppl_inference::DEFAULT_BLOCK, store);
    let server = Server::bind("127.0.0.1:0", 2, app.handler()).expect("bind port 0");
    (app, server)
}

fn parse(body: &[u8]) -> Json {
    Json::parse(std::str::from_utf8(body).unwrap()).unwrap()
}

fn error_code(body: &[u8]) -> String {
    parse(body)
        .get("error")
        .unwrap()
        .get("code")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

const FIT_BODY: &str = r#"{"model":"weight","observations":[9.0,9.0],"seed":11,
    "fit":{"iterations":30,"samples_per_iteration":4,"learning_rate":0.08}}"#;

#[test]
fn artifacts_amortize_fits_across_queries_and_restarts() {
    let dir = std::env::temp_dir().join(format!("ppl-serve-artifact-test-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let (app, server) = boot(&dir);
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();

    // Fit: 201 with a content-addressed id and the fitted parameters.
    let (status, _, response) = conn.send("POST", "/v1/fit", Some(FIT_BODY)).unwrap();
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&response));
    let parsed = parse(&response);
    let id = parsed.get("id").unwrap().as_str().unwrap().to_string();
    assert!(id.starts_with("a-") && id.len() == 18, "{id}");
    assert_eq!(parsed.get("created").unwrap().as_bool(), Some(true));
    assert_eq!(parsed.get("model").unwrap().as_str(), Some("weight"));
    assert_eq!(parsed.get("fit_iterations").unwrap().as_f64(), Some(30.0));

    // Idempotent re-fit: 200, same id, zero additional fit executions.
    let fit_before = counters::vi_fit_executions();
    let (status, _, response) = conn.send("POST", "/v1/fit", Some(FIT_BODY)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&response));
    let parsed = parse(&response);
    assert_eq!(parsed.get("id").unwrap().as_str(), Some(id.as_str()));
    assert_eq!(parsed.get("created").unwrap().as_bool(), Some(false));
    assert_eq!(
        counters::vi_fit_executions() - fit_before,
        0,
        "re-fitting an identical request must reuse the stored artifact"
    );

    // The fresh VI query (fit + draw in one request), for the byte oracle.
    let fresh_query = r#"{"model":"weight","observations":[9.0,9.0],"seed":11,
        "method":{"algorithm":"vi","iterations":30,"samples_per_iteration":4,
                  "learning_rate":0.08,"draw_particles":200}}"#;
    let (status, _, fresh) = conn.send("POST", "/v1/query", Some(fresh_query)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&fresh));

    // Warm query by artifact id: byte-identical, zero fit executions.
    let warm_query = format!(r#"{{"model":"weight","artifact":"{id}","draw_particles":200}}"#);
    let fit_before = counters::vi_fit_executions();
    let (status, headers, warm) = conn.send("POST", "/v1/query", Some(&warm_query)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&warm));
    assert_eq!(
        counters::vi_fit_executions() - fit_before,
        0,
        "artifact query must run zero VI fit executions"
    );
    assert_eq!(
        String::from_utf8(warm.clone()).unwrap(),
        String::from_utf8(fresh.clone()).unwrap(),
        "warm artifact query must be byte-identical to the fresh fit"
    );
    assert!(headers.iter().any(|(k, v)| k == "x-cache" && v == "miss"));

    // Repeating it hits the response cache.
    let (status, headers, cached) = conn.send("POST", "/v1/query", Some(&warm_query)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(cached, warm);
    assert!(headers.iter().any(|(k, v)| k == "x-cache" && v == "hit"));

    // Lifecycle: listing and GET see the artifact; /v1/models counts it.
    let (status, _, response) = conn.send("GET", "/v1/artifacts", None).unwrap();
    assert_eq!(status, 200);
    let parsed = parse(&response);
    assert_eq!(parsed.get("count").unwrap().as_f64(), Some(1.0));
    let (status, _, response) = conn
        .send("GET", &format!("/v1/artifacts/{id}"), None)
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        parse(&response).get("id").unwrap().as_str(),
        Some(id.as_str())
    );
    let (status, _, response) = conn.send("GET", "/v1/models", None).unwrap();
    assert_eq!(status, 200);
    let models = parse(&response);
    let weight = models
        .get("models")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|m| m.get("id").and_then(Json::as_str) == Some("weight"))
        .expect("weight listed");
    assert_eq!(weight.get("artifacts").unwrap().as_f64(), Some(1.0));
    assert!(weight.get("fits").unwrap().as_f64().unwrap() >= 2.0);

    // Metrics expose the store gauges.
    let (status, _, response) = conn.send("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let metrics = parse(&response);
    let store_section = metrics.get("store").expect("store section");
    assert_eq!(store_section.get("artifacts").unwrap().as_f64(), Some(1.0));
    assert!(store_section.get("bytes").unwrap().as_f64().unwrap() > 0.0);
    assert!(store_section.get("warm_starts").unwrap().as_f64().unwrap() >= 1.0);

    // Error cases: unknown artifact, wrong model, batch rejection.
    let (status, _, response) = conn
        .send(
            "POST",
            "/v1/query",
            Some(r#"{"model":"weight","artifact":"a-0000000000000000"}"#),
        )
        .unwrap();
    assert_eq!(status, 400);
    assert_eq!(error_code(&response), "artifact.not_found");
    let mismatch = format!(r#"{{"model":"ex-1","artifact":"{id}"}}"#);
    let (status, _, response) = conn.send("POST", "/v1/query", Some(&mismatch)).unwrap();
    assert_eq!(status, 400);
    assert_eq!(error_code(&response), "artifact.model_mismatch");
    let conflicting = format!(r#"{{"model":"weight","artifact":"{id}","seed":7}}"#);
    let (status, _, response) = conn.send("POST", "/v1/query", Some(&conflicting)).unwrap();
    assert_eq!(status, 400);
    assert_eq!(error_code(&response), "request.schema");
    let batch = format!(r#"{{"model":"weight","items":[{{"artifact":"{id}"}}]}}"#);
    let (status, _, response) = conn.send("POST", "/v1/batch", Some(&batch)).unwrap();
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&response));
    let (status, _, response) = conn
        .send("GET", "/v1/artifacts/a-ffffffffffffffff", None)
        .unwrap();
    assert_eq!(status, 404);
    assert_eq!(error_code(&response), "artifact.not_found");

    server.shutdown();
    drop(app);

    // Restart: a fresh App over the same directory warm-starts its index
    // and serves the same bytes with zero refits.
    let (_app2, server2) = boot(&dir);
    let mut conn = ClientConn::connect(server2.local_addr()).unwrap();
    let fit_before = counters::vi_fit_executions();
    let (status, _, warm2) = conn.send("POST", "/v1/query", Some(&warm_query)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&warm2));
    assert_eq!(
        counters::vi_fit_executions() - fit_before,
        0,
        "restarted server must serve artifact queries without refitting"
    );
    assert_eq!(
        String::from_utf8(warm2).unwrap(),
        String::from_utf8(fresh).unwrap(),
        "restart must not change a single byte of the warm response"
    );

    // Deletion works exactly once; the artifact is then gone.
    let (status, _, _) = conn
        .send("DELETE", &format!("/v1/artifacts/{id}"), None)
        .unwrap();
    assert_eq!(status, 200);
    let (status, _, response) = conn
        .send("DELETE", &format!("/v1/artifacts/{id}"), None)
        .unwrap();
    assert_eq!(status, 404);
    assert_eq!(error_code(&response), "artifact.not_found");

    server2.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
