//! **ppl-serve** — the HTTP front door of the guide-types PPL.
//!
//! The paper's thesis is that a guide-type-checked model–guide pair is
//! *provably sound to run inference on*; this crate is what that soundness
//! buys operationally.  Every servable model is compiled **once** at boot
//! into a shared [`Session`](guide_ppl::Session) (the registry), every
//! request is validated against the model's inferred observation protocol
//! **before any particle runs** (bad inputs are structured `400`s, not
//! worker crashes), and — because all inference randomness derives from
//! the request's own seed — responses are **pure functions of the
//! request**, which makes an exact LRU response cache sound: a warm hit is
//! the byte-identical response of a fresh run, at zero inference cost.
//!
//! Everything is plain `std` (the build environment is offline): a strict
//! JSON codec with byte-position errors ([`json`]), a threaded HTTP/1.1
//! server with keep-alive and graceful shutdown ([`http`]), the
//! compiled-session registry ([`registry`]), the deterministic cache
//! ([`cache`]), request metrics ([`metrics`]), the flight-recorder trace
//! routes ([`trace_api`], backed by [`ppl_obs`]), and the routes and
//! wire protocol ([`api`]).
//!
//! # Booting a server
//!
//! ```
//! use ppl_serve::{api::App, http::{self, Server}, registry::Registry};
//!
//! let app = App::new(Registry::from_benchmarks(), 256);
//! // Port 0: bind an ephemeral port, read it back from `local_addr`.
//! let server = Server::bind("127.0.0.1:0", 2, app.handler()).unwrap();
//! let addr = server.local_addr();
//! let (status, _, body) = http::http_request(addr, "GET", "/healthz", None).unwrap();
//! assert_eq!(status, 200);
//! assert!(String::from_utf8_lossy(&body).contains("\"ok\""));
//! server.shutdown();
//! ```

pub mod api;
pub mod cache;
pub mod fit;
pub mod http;
pub mod ingest;
pub mod metrics;
pub mod registry;
pub mod trace_api;

/// The flight recorder (spans, structured logs, request traces),
/// re-exported so embedders and the bench harness can reach
/// [`obs::Recorder`] and [`obs::log`] without a separate dependency.
pub use ppl_obs as obs;

/// The strict JSON codec.  It moved to `ppl-store` (PR 8) so the artifact
/// store can share it; re-exported here so `ppl_serve::json::Json` keeps
/// working.
pub use ppl_store::json;

pub use api::{App, AppLimits};
pub use cache::ResponseCache;
pub use http::{Request, Response, Server, ServerConfig};
pub use json::{Json, JsonError};
pub use registry::Registry;
