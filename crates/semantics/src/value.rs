//! Runtime values and environments.

use ppl_dist::{Distribution, Sample};
use ppl_syntax::ast::{BaseType, Expr, Ident};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A runtime value of the deterministic fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value `triv`.
    Unit,
    /// A Boolean.
    Bool(bool),
    /// A real number.
    Real(f64),
    /// A natural number.
    Nat(u64),
    /// A primitive distribution value.
    Dist(Distribution),
    /// A closure `clo(V, λ(x. e))`.
    Closure {
        /// Captured environment.
        env: Env,
        /// Parameter name.
        param: Ident,
        /// Function body.
        body: Box<Expr>,
    },
}

impl Value {
    /// The Boolean payload, if this is a Boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A numeric view (`Real` and `Nat` both convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Nat(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The natural-number payload, if any.
    pub fn as_nat(&self) -> Option<u64> {
        match self {
            Value::Nat(n) => Some(*n),
            _ => None,
        }
    }

    /// The distribution payload, if any.
    pub fn as_dist(&self) -> Option<&Distribution> {
        match self {
            Value::Dist(d) => Some(d),
            _ => None,
        }
    }

    /// Converts a sample message payload into a value.
    pub fn from_sample(s: Sample) -> Value {
        match s {
            Sample::Bool(b) => Value::Bool(b),
            Sample::Real(r) => Value::Real(r),
            Sample::Nat(n) => Value::Nat(n),
        }
    }

    /// Converts this value into a sample payload, if it is scalar.
    pub fn to_sample(&self) -> Option<Sample> {
        match self {
            Value::Bool(b) => Some(Sample::Bool(*b)),
            Value::Real(r) => Some(Sample::Real(*r)),
            Value::Nat(n) => Some(Sample::Nat(*n)),
            _ => None,
        }
    }

    /// Well-typedness of a value at a scalar base type (the `v : τ` judgment
    /// of Fig. 13, scalar cases).
    pub fn has_type(&self, ty: &BaseType) -> bool {
        match (self, ty) {
            (Value::Unit, BaseType::Unit) => true,
            (Value::Bool(_), BaseType::Bool) => true,
            (Value::Real(r), BaseType::UnitInterval) => *r > 0.0 && *r < 1.0,
            (Value::Real(r), BaseType::PosReal) => *r > 0.0 && r.is_finite(),
            (Value::Real(r), BaseType::Real) => r.is_finite(),
            (Value::Nat(n), BaseType::FinNat(m)) => (*n as usize) < *m,
            (Value::Nat(_), BaseType::Nat) => true,
            (Value::Dist(d), BaseType::Dist(carrier)) => {
                carrier_of_kind(d.kind()) == **carrier || {
                    // A distribution is well-typed at any carrier its kind
                    // refines to (e.g. dist(ureal) <: nothing — kinds are
                    // exact, so require equality).
                    false
                }
            }
            (Value::Closure { .. }, BaseType::Arrow(..)) => true,
            _ => false,
        }
    }
}

/// The carrier base type of a distribution kind.
pub fn carrier_of_kind(kind: ppl_dist::DistKind) -> BaseType {
    match kind {
        ppl_dist::DistKind::Bool => BaseType::Bool,
        ppl_dist::DistKind::UnitInterval => BaseType::UnitInterval,
        ppl_dist::DistKind::PosReal => BaseType::PosReal,
        ppl_dist::DistKind::Real => BaseType::Real,
        ppl_dist::DistKind::FinNat(n) => BaseType::FinNat(n),
        ppl_dist::DistKind::Nat => BaseType::Nat,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Nat(n) => write!(f, "{n}"),
            Value::Dist(d) => write!(f, "{d}"),
            Value::Closure { param, .. } => write!(f, "<closure {param}>"),
        }
    }
}

/// A runtime environment `V` mapping program variables to values.
///
/// Environments form a *persistent scope chain*: each [`Env`] is a pointer
/// to an immutable frame holding the bindings introduced at that scope plus
/// an [`Arc`] link to the parent frame.  Extension ([`Env::extended`]) is
/// O(1) — it allocates one small frame and bumps the parent's reference
/// count — and cloning an environment is a single `Arc` clone, so the
/// coroutine interpreter can capture the environment in every continuation
/// frame without ever copying a binding map.  Lookup walks the chain from
/// the innermost frame outwards, which gives the usual shadowing semantics
/// of `V[x ↦ v]`.  `Arc` (rather than `Rc`) keeps values `Send + Sync` so
/// whole coroutines can move across the parallel particle driver's threads.
#[derive(Clone, Default)]
pub struct Env {
    head: Option<Arc<EnvFrame>>,
}

/// One immutable frame of the scope chain.
#[derive(Debug)]
struct EnvFrame {
    bindings: Vec<(Ident, Value)>,
    parent: Option<Arc<EnvFrame>>,
}

impl Env {
    /// The empty environment `∅`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the environment extended with a binding (`V[x ↦ v]`).
    ///
    /// O(1): the receiver is shared as the parent of a fresh one-binding
    /// frame, never copied.
    pub fn extended(&self, x: Ident, v: Value) -> Env {
        Env {
            head: Some(Arc::new(EnvFrame {
                bindings: vec![(x, v)],
                parent: self.head.clone(),
            })),
        }
    }

    /// Adds a binding in place.
    ///
    /// When this environment is the sole owner of its innermost frame the
    /// binding is pushed into it; otherwise a fresh frame is chained on, so
    /// sharers of the old frame are never affected.
    pub fn insert(&mut self, x: Ident, v: Value) {
        if let Some(head) = self.head.as_mut().and_then(Arc::get_mut) {
            head.bindings.push((x, v));
            return;
        }
        *self = self.extended(x, v);
    }

    /// Looks up a variable, innermost binding first.
    pub fn lookup(&self, x: &Ident) -> Option<&Value> {
        let mut frame = self.head.as_deref();
        while let Some(f) = frame {
            if let Some((_, v)) = f.bindings.iter().rev().find(|(name, _)| name == x) {
                return Some(v);
            }
            frame = f.parent.as_deref();
        }
        None
    }

    /// Builds an environment from name/value pairs.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Ident, Value)>) -> Env {
        let mut env = Env::new();
        for (x, v) in bindings {
            env.insert(x, v);
        }
        env
    }

    /// Number of *visible* (distinct-name) bindings.
    ///
    /// O(total bindings in the chain) — a reflection helper, not a hot-path
    /// operation.
    pub fn len(&self) -> usize {
        self.flattened().len()
    }

    /// True if the environment has no bindings.
    pub fn is_empty(&self) -> bool {
        // Every frame holds at least one binding (`extended` creates a
        // one-binding frame; `insert` pushes into or chains one), so an
        // environment is empty exactly when it has no frame at all.
        self.head.is_none()
    }

    /// The visible bindings as a map (shadowed bindings resolved).
    fn flattened(&self) -> HashMap<&Ident, &Value> {
        let mut frames = Vec::new();
        let mut frame = self.head.as_deref();
        while let Some(f) = frame {
            frames.push(f);
            frame = f.parent.as_deref();
        }
        let mut map = HashMap::new();
        // Outermost first so inner bindings override.
        for f in frames.into_iter().rev() {
            for (x, v) in &f.bindings {
                map.insert(x, v);
            }
        }
        map
    }
}

impl PartialEq for Env {
    /// Structural equality of the *visible* bindings (two environments are
    /// equal when every lookup agrees, regardless of frame layout).
    fn eq(&self, other: &Self) -> bool {
        self.flattened() == other.flattened()
    }
}

/// A binding context the expression evaluator can run against.
///
/// Two implementations exist: the persistent scope-chain [`Env`] (closures
/// capture it; the big-step [`Evaluator`](crate::Evaluator) threads it) and
/// the flat, reusable [`ValueStack`] that the coroutine interpreter keeps
/// per worker so the particle hot loop never allocates an environment
/// frame.  Expression-local scopes (`let`-bodies) are pushed and then
/// restored via [`Bindings::mark`]/[`Bindings::restore`].
pub trait Bindings {
    /// An opaque token describing the current scope state.
    type Mark;

    /// Looks up a variable, innermost binding first.
    fn lookup(&self, x: &Ident) -> Option<&Value>;

    /// Records the current scope state.
    fn mark(&self) -> Self::Mark;

    /// Adds a binding (to be undone by [`Bindings::restore`]).
    fn push(&mut self, x: Ident, v: Value);

    /// Restores the scope state recorded by [`Bindings::mark`].
    fn restore(&mut self, mark: Self::Mark);

    /// Snapshots the visible bindings as a persistent [`Env`] (used when a
    /// closure captures its environment).
    fn capture(&self) -> Env;
}

impl Bindings for Env {
    type Mark = Env;

    fn lookup(&self, x: &Ident) -> Option<&Value> {
        Env::lookup(self, x)
    }

    fn mark(&self) -> Env {
        self.clone()
    }

    fn push(&mut self, x: Ident, v: Value) {
        self.insert(x, v);
    }

    fn restore(&mut self, mark: Env) {
        *self = mark;
    }

    fn capture(&self) -> Env {
        self.clone()
    }
}

/// A flat, reusable binding stack for the coroutine interpreter.
///
/// Where [`Env`] allocates one immutable frame per extension (so that
/// continuations and closures can share it), a `ValueStack` is a single
/// growable `Vec` of `(name, value)` entries plus a *scope base*: lookups
/// walk from the top of the stack down to the base, which gives the usual
/// shadowing semantics while keeping procedure scopes separate — a callee
/// must not see its caller's bindings, so entering a procedure raises the
/// base to the current length and returning restores it.  Once the stack
/// has grown to a program's working depth, re-running the program pushes
/// into retained capacity: the steady state allocates nothing.
///
/// Closures are the one construct that outlives stack discipline; creating
/// one snapshots the visible bindings into a persistent [`Env`] via
/// [`Bindings::capture`] (programs that build closures on the hot path pay
/// that allocation; the benchmark models do not).
#[derive(Debug, Clone, Default)]
pub struct ValueStack {
    entries: Vec<(Ident, Value)>,
    base: usize,
}

impl ValueStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries (across all scopes).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no bindings are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current scope base: lookups do not descend below this index.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Sets the scope base (entering a procedure scope).
    pub fn set_base(&mut self, base: usize) {
        self.base = base;
    }

    /// Truncates the stack to `len` entries (leaving callee scopes).
    pub fn truncate(&mut self, len: usize) {
        self.entries.truncate(len);
    }

    /// Clears all entries and resets the base, retaining capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.base = 0;
    }
}

impl Bindings for ValueStack {
    type Mark = usize;

    fn lookup(&self, x: &Ident) -> Option<&Value> {
        self.entries[self.base..]
            .iter()
            .rev()
            .find(|(name, _)| name == x)
            .map(|(_, v)| v)
    }

    fn mark(&self) -> usize {
        self.entries.len()
    }

    fn push(&mut self, x: Ident, v: Value) {
        self.entries.push((x, v));
    }

    fn restore(&mut self, mark: usize) {
        self.entries.truncate(mark);
    }

    fn capture(&self) -> Env {
        Env::from_bindings(self.entries[self.base..].iter().cloned())
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let map = self.flattened();
        let mut entries: Vec<_> = map.iter().collect();
        entries.sort_by_key(|(x, _)| x.as_str());
        f.debug_map().entries(entries).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_round_trip() {
        for v in [Value::Bool(true), Value::Real(2.5), Value::Nat(7)] {
            let s = v.to_sample().unwrap();
            assert_eq!(Value::from_sample(s), v);
        }
        assert!(Value::Unit.to_sample().is_none());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Real(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Nat(3).as_f64(), Some(3.0));
        assert_eq!(Value::Nat(3).as_nat(), Some(3));
        assert!(Value::Real(1.0).as_bool().is_none());
        assert!(Value::Dist(Distribution::uniform()).as_dist().is_some());
    }

    #[test]
    fn value_typing() {
        assert!(Value::Real(0.5).has_type(&BaseType::UnitInterval));
        assert!(!Value::Real(1.5).has_type(&BaseType::UnitInterval));
        assert!(Value::Real(1.5).has_type(&BaseType::PosReal));
        assert!(Value::Real(-1.5).has_type(&BaseType::Real));
        assert!(!Value::Real(-1.5).has_type(&BaseType::PosReal));
        assert!(Value::Nat(2).has_type(&BaseType::FinNat(3)));
        assert!(!Value::Nat(3).has_type(&BaseType::FinNat(3)));
        assert!(Value::Nat(100).has_type(&BaseType::Nat));
        assert!(Value::Unit.has_type(&BaseType::Unit));
        assert!(Value::Bool(false).has_type(&BaseType::Bool));
        assert!(
            Value::Dist(Distribution::uniform()).has_type(&BaseType::dist(BaseType::UnitInterval))
        );
        assert!(!Value::Dist(Distribution::uniform()).has_type(&BaseType::dist(BaseType::Real)));
    }

    #[test]
    fn env_operations() {
        let env = Env::new();
        assert!(env.is_empty());
        let env2 = env.extended("x".into(), Value::Real(1.0));
        assert!(env.lookup(&"x".into()).is_none());
        assert_eq!(env2.lookup(&"x".into()), Some(&Value::Real(1.0)));
        assert_eq!(env2.len(), 1);
        let env3 =
            Env::from_bindings([("a".into(), Value::Nat(1)), ("b".into(), Value::Bool(true))]);
        assert_eq!(env3.len(), 2);
    }

    #[test]
    fn scope_chain_shadowing_and_persistence() {
        let base = Env::from_bindings([("x".into(), Value::Real(1.0))]);
        let shadowed = base.extended("x".into(), Value::Real(2.0));
        // The inner binding wins in the extension; the base is untouched.
        assert_eq!(shadowed.lookup(&"x".into()), Some(&Value::Real(2.0)));
        assert_eq!(base.lookup(&"x".into()), Some(&Value::Real(1.0)));
        // Shadowing does not create a new visible binding.
        assert_eq!(shadowed.len(), 1);
        // Two chains with the same visible bindings are equal even when
        // their frame layouts differ.
        let flat = Env::from_bindings([("x".into(), Value::Real(2.0))]);
        assert_eq!(shadowed, flat);
        assert_ne!(base, flat);
    }

    #[test]
    fn insert_never_mutates_sharers() {
        let mut a = Env::from_bindings([("x".into(), Value::Nat(1))]);
        let b = a.clone();
        a.insert("y".into(), Value::Nat(2));
        assert_eq!(a.lookup(&"y".into()), Some(&Value::Nat(2)));
        assert!(b.lookup(&"y".into()).is_none(), "sharer must be unaffected");
        // In-place insert on a sole owner also shadows correctly.
        let mut c = Env::new();
        c.insert("x".into(), Value::Nat(1));
        c.insert("x".into(), Value::Nat(2));
        assert_eq!(c.lookup(&"x".into()), Some(&Value::Nat(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn deep_chains_resolve_outer_bindings() {
        let mut env = Env::from_bindings([("x0".into(), Value::Nat(0))]);
        for i in 1..200u64 {
            env = env.extended(format!("x{i}").into(), Value::Nat(i));
        }
        assert_eq!(env.len(), 200);
        assert_eq!(env.lookup(&"x0".into()), Some(&Value::Nat(0)));
        assert_eq!(env.lookup(&"x199".into()), Some(&Value::Nat(199)));
        assert!(env.lookup(&"x200".into()).is_none());
    }
}
