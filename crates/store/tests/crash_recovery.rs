//! Crash-recovery coverage: boot the store against artifact files damaged
//! the way real crashes damage them — truncated writes, bit flips, and
//! torn (partially-renamed) write protocols — and check that the boot
//! scan skips and counts every casualty, keeps the survivors, and that a
//! subsequent `put` re-creates a clean, byte-canonical artifact.

use ppl_store::{
    compute_id, Artifact, FitConfig, FitParam, ObsLit, Store, ARTIFACT_FORMAT_VERSION,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

fn tempdir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("ppl-store-crash-{}-{tag}-{n}", std::process::id()));
    fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn artifact(seed: u64) -> Artifact {
    let schema = vec![FitParam {
        name: "mu".into(),
        init: 0.0,
        positive: false,
    }];
    let config = FitConfig {
        iterations: 10,
        samples_per_iteration: 4,
        learning_rate: 0.05,
        fd_epsilon: 1e-4,
    };
    let observations = vec![ObsLit::Real(2.5)];
    let id = compute_id(
        "m-0011223344556677",
        &observations,
        &[],
        &schema,
        &config,
        seed,
    );
    Artifact {
        version: ARTIFACT_FORMAT_VERSION,
        id,
        model_id: "m-0011223344556677".into(),
        seed,
        observations,
        model_args: vec![],
        schema,
        config,
        params: vec![2.25 + seed as f64],
        fit_iterations: 10,
        elbo_tail: vec![-1.5],
        rng_state: 7 + seed,
        rng_inc: 0xda3e_39cb_94b9_5bdb,
    }
}

/// Writes `seed`'s artifact through the store, then damages the file with
/// `damage` and reopens — the damaged artifact must be skipped and
/// counted, not loaded and not fatal.
fn boot_after_damage(tag: &str, damage: impl FnOnce(&PathBuf, &str)) -> (PathBuf, Store, String) {
    let dir = tempdir(tag);
    let id = {
        let store = Store::open(&dir, 8).expect("open");
        let (id, created) = store.put(artifact(1)).expect("put");
        assert!(created);
        // A healthy neighbour that must survive every scenario.
        store.put(artifact(2)).expect("put survivor");
        id
    };
    damage(&dir, &id);
    let store = Store::open(&dir, 8).expect("reopen after damage");
    (dir, store, id)
}

/// After recovery, re-putting the same artifact must re-create the file
/// with its canonical bytes, as a fresh fit would.
fn assert_reput_recovers(dir: &Path, store: &Store, id: &str) {
    let (new_id, created) = store.put(artifact(1)).expect("re-put");
    assert_eq!(new_id, id, "content addressing is stable");
    assert!(created, "the damaged artifact was really gone");
    let on_disk = fs::read(dir.join(format!("{id}.json"))).expect("recreated file");
    assert_eq!(
        on_disk,
        artifact(1).to_bytes().expect("finite"),
        "recovered file holds the canonical encoding"
    );
}

#[test]
fn truncated_artifact_is_skipped_and_refit_recovers() {
    let (dir, store, id) = boot_after_damage("trunc", |dir, id| {
        // A crash mid-write on a non-atomic filesystem: keep half the
        // bytes.
        let path = dir.join(format!("{id}.json"));
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    });
    assert_eq!(store.len(), 1, "only the survivor loads");
    assert_eq!(store.skipped_at_boot(), 1);
    assert!(store.get(&id).is_none());
    assert!(store.get(&artifact(2).id).is_some());
    assert_reput_recovers(&dir, &store, &id);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_artifact_is_skipped_and_refit_recovers() {
    let (dir, store, id) = boot_after_damage("flip", |dir, id| {
        // Silent media corruption: one flipped bit in the middle of the
        // record (inside the params payload, past the header fields).
        let path = dir.join(format!("{id}.json"));
        let mut bytes = fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).expect("flip");
    });
    assert_eq!(store.len(), 1, "only the survivor loads");
    assert_eq!(store.skipped_at_boot(), 1);
    assert!(store.get(&id).is_none());
    assert_reput_recovers(&dir, &store, &id);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_rename_leaves_tmp_only_and_refit_recovers() {
    let (dir, store, id) = boot_after_damage("torn", |dir, id| {
        // A crash between `write(.tmp)` and `rename`: the final file never
        // appeared, the .tmp holds complete bytes.
        let path = dir.join(format!("{id}.json"));
        let bytes = fs::read(&path).expect("read");
        fs::write(dir.join(format!("{id}.json.tmp")), &bytes).expect("tmp");
        fs::remove_file(&path).expect("remove final");
    });
    assert_eq!(store.len(), 1, "only the survivor loads");
    // .tmp leftovers are the write protocol working as designed (the
    // rename never committed), so they are ignored, not counted as
    // casualties.
    assert_eq!(store.skipped_at_boot(), 0);
    assert!(store.get(&id).is_none());
    assert_reput_recovers(&dir, &store, &id);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn half_torn_rename_with_truncated_final_is_counted() {
    let (dir, store, id) = boot_after_damage("half-torn", |dir, id| {
        // The nastier tear: the rename committed but an earlier crashed
        // attempt left a short final file (e.g. a non-atomic overwrite on
        // a degraded filesystem) and the .tmp from the retry survives too.
        let path = dir.join(format!("{id}.json"));
        let bytes = fs::read(&path).expect("read");
        fs::write(dir.join(format!("{id}.json.tmp")), &bytes).expect("tmp");
        fs::write(&path, &bytes[..8]).expect("short final");
    });
    assert_eq!(store.len(), 1, "only the survivor loads");
    assert_eq!(store.skipped_at_boot(), 1, "the short final file counts");
    assert!(store.get(&id).is_none());
    assert_reput_recovers(&dir, &store, &id);
    fs::remove_dir_all(&dir).ok();
}
