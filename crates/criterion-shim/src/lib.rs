//! An offline, API-compatible subset of the `criterion` benchmarking crate.
//!
//! The build environment for this repository has no network access, so the
//! real criterion cannot be fetched from crates.io.  This shim implements
//! exactly the surface used by `ppl-bench/benches/paper_benches.rs` —
//! benchmark groups, `iter` / `iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple mean-of-samples timer, so
//! `cargo bench` runs end-to-end and reports per-benchmark timings.
//!
//! The shim is intentionally minimal: no statistical analysis, no HTML
//! reports, no command-line filtering.  Swapping in the real criterion later
//! is a one-line change in `ppl-bench/Cargo.toml`.

use std::time::{Duration, Instant};

/// Controls how `iter_batched` amortises its setup cost.  The shim times
/// each routine invocation individually, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: one setup per routine call.
    SmallInput,
    /// Large inputs: one setup per routine call (same as small here).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            warm_up_iters: 1,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_iters: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim warms up with a fixed small
    /// number of untimed iterations instead of a time budget.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim always times exactly
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_iters: self.warm_up_iters,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters > 0 {
            bencher.total / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "  {}/{id}: {:>12.3?} /iter  ({} iters)",
            self.name, mean, bencher.iters
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures on behalf of [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    sample_size: usize,
    warm_up_iters: usize,
    total: Duration,
    iters: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.warm_up_iters {
            std::hint::black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` with a fresh `setup()` input per call; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warm_up_iters {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a function running a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($bench_fn:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $bench_fn(&mut criterion); )+
        }
    };
}

/// Declares `main` running one or more benchmark groups, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $( $group_name(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::ZERO)
            .measurement_time(Duration::ZERO);
        let mut calls = 0usize;
        group.bench_function("iter", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
        let mut setups = 0usize;
        let mut routines = 0usize;
        group.bench_function("iter_batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |input| {
                    routines += 1;
                    input
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, routines);
        assert_eq!(routines, 4);
        group.finish();
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.benchmark_group("demo")
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_expand() {
        demo_group();
    }
}
