//! The fitted-guide artifact record: a content-addressed, versioned
//! checkpoint of one VI fit.
//!
//! # Id semantics
//!
//! An artifact id is `a-` plus the first 16 hex digits of the SHA-256 of
//! every input that determines the fitted parameters: the model's
//! content-hash id, the observations, the model arguments, the guide
//! parameter schema (names, initial values, positivity constraints), the
//! fit configuration, and the seed.  Fits are bit-deterministic, so the id
//! is computable *before* running the fit — `POST /v1/fit` uses that to
//! make repeat fits idempotent — and an id names exactly one parameter
//! vector forever, which is what makes it safe to embed in response-cache
//! fingerprints.
//!
//! The recipe deliberately extends the headline "model id + schema +
//! config + seed" with the observations and model arguments: the fitted
//! parameters depend on both, so omitting them would let two different
//! fits collide under one id.
//!
//! Perf knobs (`num_threads`, `block`) are **excluded**: block execution
//! is bit-identical at every thread count and block size, so they change
//! wall-clock only, never the parameters.
//!
//! # Encoding
//!
//! [`Artifact::to_bytes`] emits one compact JSON object with a fixed key
//! order, so the same fit always produces the same file bytes (the store's
//! byte-determinism guarantee).  Floats use the codec's shortest
//! round-trippable form; the two raw RNG words are 64-bit and JSON numbers
//! only cover integers up to 2^53, so they are encoded as 16-hex-digit
//! strings.

use crate::json::{Json, JsonError};
use crate::sha::Sha256;
use std::fmt;

/// Version stamp written into every artifact file.  Decoding a different
/// version fails with [`ArtifactError::Version`] rather than guessing.
pub const ARTIFACT_FORMAT_VERSION: u64 = 1;

/// One guide parameter's schema entry: its name, the initial value the
/// fit started from, and whether it is constrained positive (optimised in
/// log space).
#[derive(Debug, Clone, PartialEq)]
pub struct FitParam {
    /// Parameter name (matches the guide's formal parameter).
    pub name: String,
    /// Initial value the optimiser started from.
    pub init: f64,
    /// Whether the parameter is constrained positive.
    pub positive: bool,
}

/// The semantic fit configuration — the `ViConfig` fields that determine
/// the fitted parameters.  Thread count and block size are perf knobs
/// (bit-identical results by construction) and are deliberately absent.
#[derive(Debug, Clone, PartialEq)]
pub struct FitConfig {
    /// Number of optimisation iterations.
    pub iterations: usize,
    /// Mini-batch size per iteration.
    pub samples_per_iteration: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Central finite-difference step for score gradients.
    pub fd_epsilon: f64,
}

/// One observation literal, mirroring the runtime's sample values without
/// depending on the runtime crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsLit {
    /// A boolean observation.
    Bool(bool),
    /// A real-valued observation.
    Real(f64),
    /// A natural-number observation.
    Nat(u64),
}

/// A fitted-guide artifact: the parameter vector plus the provenance
/// needed to validate and replay it.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Format version ([`ARTIFACT_FORMAT_VERSION`]).
    pub version: u64,
    /// Content-hash id, `a-<16 hex>` (see module docs for the recipe).
    pub id: String,
    /// Content-hash id of the model–guide pair this fit belongs to.
    pub model_id: String,
    /// RNG seed the fit ran under.
    pub seed: u64,
    /// Observations the fit conditioned on.
    pub observations: Vec<ObsLit>,
    /// Model arguments the fit ran with.
    pub model_args: Vec<f64>,
    /// Guide parameter schema (names, inits, positivity).
    pub schema: Vec<FitParam>,
    /// Semantic fit configuration.
    pub config: FitConfig,
    /// The fitted parameter vector (constrained space), same order as
    /// `schema`.
    pub params: Vec<f64>,
    /// Total optimisation iterations the fit ran (`elbo_tail` holds only
    /// the trailing window).
    pub fit_iterations: u64,
    /// Trailing window of the ELBO trajectory: exactly the last
    /// `max(1, fit_iterations / 10)` entries, the window `final_elbo`
    /// averages over.
    pub elbo_tail: Vec<f64>,
    /// Raw PCG state word captured immediately after the fit, so a warm
    /// draw pass resumes the exact RNG position of a fresh fit-then-draw.
    pub rng_state: u64,
    /// Raw PCG increment word (stream selector) captured with
    /// [`Artifact::rng_state`].
    pub rng_inc: u64,
}

/// Why an artifact could not be decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The bytes are not valid JSON.
    Json(JsonError),
    /// The JSON parsed but is not a valid artifact record; the message
    /// names the offending field.
    Malformed(String),
    /// The record's format version is not [`ARTIFACT_FORMAT_VERSION`].
    Version {
        /// Version found in the record.
        found: u64,
    },
}

impl ArtifactError {
    /// Stable machine-readable code for this error, used verbatim in HTTP
    /// bodies and log lines.
    pub fn code(&self) -> &'static str {
        match self {
            ArtifactError::Json(_) | ArtifactError::Malformed(_) => "artifact.malformed",
            ArtifactError::Version { .. } => "artifact.version",
        }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Json(e) => write!(f, "{}: not valid JSON: {e}", self.code()),
            ArtifactError::Malformed(what) => write!(f, "{}: {what}", self.code()),
            ArtifactError::Version { found } => write!(
                f,
                "{}: artifact format version {found} is not the supported version \
                 {ARTIFACT_FORMAT_VERSION}",
                self.code()
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Computes the content-hash artifact id for the given fit inputs (see
/// the module docs for the exact recipe).  Callable before the fit runs:
/// fits are bit-deterministic, so the inputs alone name the output.
pub fn compute_id(
    model_id: &str,
    observations: &[ObsLit],
    model_args: &[f64],
    schema: &[FitParam],
    config: &FitConfig,
    seed: u64,
) -> String {
    let mut h = Sha256::new();
    let mut field = |bytes: &[u8]| {
        h.update(&(bytes.len() as u64).to_le_bytes());
        h.update(bytes);
    };
    field(model_id.as_bytes());
    field(&(observations.len() as u64).to_le_bytes());
    for obs in observations {
        // Tag + payload keeps Bool/Real/Nat encodings disjoint.
        match obs {
            ObsLit::Bool(b) => field(&[0, u8::from(*b)]),
            ObsLit::Real(x) => {
                let mut buf = [0u8; 9];
                buf[0] = 1;
                buf[1..].copy_from_slice(&x.to_bits().to_le_bytes());
                field(&buf);
            }
            ObsLit::Nat(n) => {
                let mut buf = [0u8; 9];
                buf[0] = 2;
                buf[1..].copy_from_slice(&n.to_le_bytes());
                field(&buf);
            }
        }
    }
    field(&(model_args.len() as u64).to_le_bytes());
    for arg in model_args {
        field(&arg.to_bits().to_le_bytes());
    }
    field(&(schema.len() as u64).to_le_bytes());
    for p in schema {
        field(p.name.as_bytes());
        field(&p.init.to_bits().to_le_bytes());
        field(&[u8::from(p.positive)]);
    }
    field(&(config.iterations as u64).to_le_bytes());
    field(&(config.samples_per_iteration as u64).to_le_bytes());
    field(&config.learning_rate.to_bits().to_le_bytes());
    field(&config.fd_epsilon.to_bits().to_le_bytes());
    field(&seed.to_le_bytes());
    let digest = h.finalize();
    let mut id = String::with_capacity(18);
    id.push_str("a-");
    for byte in &digest[..8] {
        use fmt::Write;
        let _ = write!(id, "{byte:02x}");
    }
    id
}

fn hex_u64(x: u64) -> Json {
    Json::Str(format!("{x:016x}"))
}

fn obs_json(obs: &ObsLit) -> Json {
    match obs {
        ObsLit::Bool(b) => Json::Obj(vec![("bool".into(), Json::Bool(*b))]),
        ObsLit::Real(x) => Json::Obj(vec![("real".into(), Json::Num(*x))]),
        ObsLit::Nat(n) => Json::Obj(vec![("nat".into(), Json::Num(*n as f64))]),
    }
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, ArtifactError> {
    doc.get(key)
        .ok_or_else(|| ArtifactError::Malformed(format!("missing field '{key}'")))
}

fn require_u64(doc: &Json, key: &str) -> Result<u64, ArtifactError> {
    require(doc, key)?
        .as_u64()
        .ok_or_else(|| ArtifactError::Malformed(format!("'{key}' must be a non-negative integer")))
}

fn require_f64(doc: &Json, key: &str) -> Result<f64, ArtifactError> {
    require(doc, key)?
        .as_f64()
        .ok_or_else(|| ArtifactError::Malformed(format!("'{key}' must be a number")))
}

fn require_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ArtifactError> {
    require(doc, key)?
        .as_str()
        .ok_or_else(|| ArtifactError::Malformed(format!("'{key}' must be a string")))
}

fn require_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], ArtifactError> {
    require(doc, key)?
        .as_arr()
        .ok_or_else(|| ArtifactError::Malformed(format!("'{key}' must be an array")))
}

fn require_hex_u64(doc: &Json, key: &str) -> Result<u64, ArtifactError> {
    let s = require_str(doc, key)?;
    u64::from_str_radix(s, 16)
        .map_err(|_| ArtifactError::Malformed(format!("'{key}' must be a 64-bit hex string")))
}

fn f64_list(doc: &Json, key: &str) -> Result<Vec<f64>, ArtifactError> {
    require_arr(doc, key)?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| ArtifactError::Malformed(format!("'{key}' must contain numbers")))
        })
        .collect()
}

impl Artifact {
    /// Renders the artifact as a JSON document with the fixed key order
    /// the byte-determinism guarantee relies on.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::Num(self.version as f64)),
            ("id".into(), Json::str(&self.id)),
            ("model".into(), Json::str(&self.model_id)),
            ("seed".into(), Json::Num(self.seed as f64)),
            (
                "observations".into(),
                Json::Arr(self.observations.iter().map(obs_json).collect()),
            ),
            (
                "model_args".into(),
                Json::Arr(self.model_args.iter().map(|&x| Json::Num(x)).collect()),
            ),
            (
                "schema".into(),
                Json::Arr(
                    self.schema
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&p.name)),
                                ("init".into(), Json::Num(p.init)),
                                ("positive".into(), Json::Bool(p.positive)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "config".into(),
                Json::Obj(vec![
                    (
                        "iterations".into(),
                        Json::Num(self.config.iterations as f64),
                    ),
                    (
                        "samples_per_iteration".into(),
                        Json::Num(self.config.samples_per_iteration as f64),
                    ),
                    ("learning_rate".into(), Json::Num(self.config.learning_rate)),
                    ("fd_epsilon".into(), Json::Num(self.config.fd_epsilon)),
                ]),
            ),
            (
                "params".into(),
                Json::Arr(self.params.iter().map(|&x| Json::Num(x)).collect()),
            ),
            (
                "fit_iterations".into(),
                Json::Num(self.fit_iterations as f64),
            ),
            (
                "elbo_tail".into(),
                Json::Arr(self.elbo_tail.iter().map(|&x| Json::Num(x)).collect()),
            ),
            ("rng_state".into(), hex_u64(self.rng_state)),
            ("rng_inc".into(), hex_u64(self.rng_inc)),
        ])
    }

    /// Serialises the artifact to the exact bytes persisted on disk.
    /// Returns `None` only if a float is non-finite (the fit layer rejects
    /// non-finite parameters before an artifact is ever built).
    pub fn to_bytes(&self) -> Option<Vec<u8>> {
        self.to_json().write().ok().map(String::into_bytes)
    }

    /// Decodes an artifact from file bytes, validating the format version
    /// and every field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| ArtifactError::Malformed("file is not UTF-8".into()))?;
        let doc = Json::parse(text).map_err(ArtifactError::Json)?;
        let version = require_u64(&doc, "version")?;
        if version != ARTIFACT_FORMAT_VERSION {
            return Err(ArtifactError::Version { found: version });
        }
        let observations = require_arr(&doc, "observations")?
            .iter()
            .map(|v| {
                if let Some(b) = v.get("bool").and_then(Json::as_bool) {
                    Ok(ObsLit::Bool(b))
                } else if let Some(x) = v.get("real").and_then(Json::as_f64) {
                    Ok(ObsLit::Real(x))
                } else if let Some(n) = v.get("nat").and_then(Json::as_u64) {
                    Ok(ObsLit::Nat(n))
                } else {
                    Err(ArtifactError::Malformed(
                        "'observations' entries must be {\"bool\"|\"real\"|\"nat\": …}".into(),
                    ))
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let schema = require_arr(&doc, "schema")?
            .iter()
            .map(|p| {
                Ok(FitParam {
                    name: require_str(p, "name")?.to_string(),
                    init: require_f64(p, "init")?,
                    positive: require(p, "positive")?.as_bool().ok_or_else(|| {
                        ArtifactError::Malformed("'positive' must be a boolean".into())
                    })?,
                })
            })
            .collect::<Result<Vec<_>, ArtifactError>>()?;
        let config_doc = require(&doc, "config")?;
        let config = FitConfig {
            iterations: require_u64(config_doc, "iterations")? as usize,
            samples_per_iteration: require_u64(config_doc, "samples_per_iteration")? as usize,
            learning_rate: require_f64(config_doc, "learning_rate")?,
            fd_epsilon: require_f64(config_doc, "fd_epsilon")?,
        };
        let artifact = Artifact {
            version,
            id: require_str(&doc, "id")?.to_string(),
            model_id: require_str(&doc, "model")?.to_string(),
            seed: require_u64(&doc, "seed")?,
            observations,
            model_args: f64_list(&doc, "model_args")?,
            schema,
            config,
            params: f64_list(&doc, "params")?,
            fit_iterations: require_u64(&doc, "fit_iterations")?,
            elbo_tail: f64_list(&doc, "elbo_tail")?,
            rng_state: require_hex_u64(&doc, "rng_state")?,
            rng_inc: require_hex_u64(&doc, "rng_inc")?,
        };
        if artifact.params.len() != artifact.schema.len() {
            return Err(ArtifactError::Malformed(
                "'params' length must match 'schema' length".into(),
            ));
        }
        // The id must match the record's own content, or the file was
        // renamed/corrupted; trusting it would poison cache fingerprints.
        let expected = compute_id(
            &artifact.model_id,
            &artifact.observations,
            &artifact.model_args,
            &artifact.schema,
            &artifact.config,
            artifact.seed,
        );
        if artifact.id != expected {
            return Err(ArtifactError::Malformed(format!(
                "id '{}' does not match the record's content hash '{expected}'",
                artifact.id
            )));
        }
        Ok(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_artifact() -> Artifact {
        let schema = vec![
            FitParam {
                name: "mu".into(),
                init: 0.0,
                positive: false,
            },
            FitParam {
                name: "sigma".into(),
                init: 1.0,
                positive: true,
            },
        ];
        let config = FitConfig {
            iterations: 40,
            samples_per_iteration: 5,
            learning_rate: 0.08,
            fd_epsilon: 1e-4,
        };
        let observations = vec![ObsLit::Real(9.0), ObsLit::Real(9.0)];
        let id = compute_id(
            "m-0011223344556677",
            &observations,
            &[],
            &schema,
            &config,
            11,
        );
        Artifact {
            version: ARTIFACT_FORMAT_VERSION,
            id,
            model_id: "m-0011223344556677".into(),
            seed: 11,
            observations,
            model_args: vec![],
            schema,
            config,
            params: vec![8.7321, 0.4412],
            fit_iterations: 40,
            elbo_tail: vec![-4.25, -4.125, -4.0, -3.875],
            rng_state: 0xdead_beef_0123_4567,
            rng_inc: 0xda3e_39cb_94b9_5bdb,
        }
    }

    #[test]
    fn round_trips_byte_exactly() {
        let artifact = sample_artifact();
        let bytes = artifact.to_bytes().expect("finite");
        let decoded = Artifact::from_bytes(&bytes).expect("valid");
        assert_eq!(decoded, artifact);
        // Re-encoding the decoded record reproduces identical bytes: the
        // file format is canonical.
        assert_eq!(decoded.to_bytes().expect("finite"), bytes);
    }

    #[test]
    fn ids_are_deterministic_and_sensitive_to_every_input() {
        let a = sample_artifact();
        let base = compute_id(
            &a.model_id,
            &a.observations,
            &a.model_args,
            &a.schema,
            &a.config,
            a.seed,
        );
        assert_eq!(base, a.id);
        assert!(base.starts_with("a-") && base.len() == 18, "{base}");
        // Every semantic input perturbs the id.
        assert_ne!(
            base,
            compute_id(
                "m-0000000000000000",
                &a.observations,
                &[],
                &a.schema,
                &a.config,
                11
            )
        );
        assert_ne!(
            base,
            compute_id(
                &a.model_id,
                &[ObsLit::Real(9.0)],
                &[],
                &a.schema,
                &a.config,
                11
            )
        );
        assert_ne!(
            base,
            compute_id(
                &a.model_id,
                &a.observations,
                &[1.0],
                &a.schema,
                &a.config,
                11
            )
        );
        let mut schema = a.schema.clone();
        schema[0].init = 0.5;
        assert_ne!(
            base,
            compute_id(&a.model_id, &a.observations, &[], &schema, &a.config, 11)
        );
        let mut config = a.config.clone();
        config.iterations = 41;
        assert_ne!(
            base,
            compute_id(&a.model_id, &a.observations, &[], &a.schema, &config, 11)
        );
        assert_ne!(
            base,
            compute_id(&a.model_id, &a.observations, &[], &a.schema, &a.config, 12)
        );
        // Observation kinds are tagged: Bool(false) ≠ Nat(0).
        assert_ne!(
            compute_id(
                &a.model_id,
                &[ObsLit::Bool(false)],
                &[],
                &a.schema,
                &a.config,
                11
            ),
            compute_id(
                &a.model_id,
                &[ObsLit::Nat(0)],
                &[],
                &a.schema,
                &a.config,
                11
            )
        );
    }

    #[test]
    fn rejects_wrong_versions_and_corruption() {
        let artifact = sample_artifact();
        let bytes = artifact.to_bytes().expect("finite");
        let text = String::from_utf8(bytes).expect("utf8");

        let bumped = text.replace("\"version\":1", "\"version\":2");
        assert_eq!(
            Artifact::from_bytes(bumped.as_bytes()),
            Err(ArtifactError::Version { found: 2 })
        );

        // Truncation → JSON error, surfaced as artifact.malformed.
        let truncated = &text.as_bytes()[..text.len() / 2];
        let err = Artifact::from_bytes(truncated).expect_err("truncated");
        assert_eq!(err.code(), "artifact.malformed");

        // A tampered field breaks the id ↔ content binding.
        let tampered = text.replace("\"seed\":11", "\"seed\":12");
        let err = Artifact::from_bytes(tampered.as_bytes()).expect_err("tampered");
        assert_eq!(err.code(), "artifact.malformed");
        assert!(err.to_string().contains("content hash"), "{err}");
    }
}
