//! Amortized inference over HTTP: `POST /v1/fit`, the
//! `/v1/artifacts[/{id}]` lifecycle, and artifact-warm `/v1/query`.
//!
//! This is the serving half of the train → checkpoint → serve shape.
//! `POST /v1/fit` runs the engine-level VI fit (through
//! [`guide_ppl::Query::fit_vi`], which uses the same block-vectorised
//! particle executor as every other engine), persists the result as a
//! content-addressed [`Artifact`], and returns its id.  A later
//! `POST /v1/query` carrying `"artifact": "a-…"` skips the fit entirely:
//! the stored parameter vector and post-fit RNG state replay the draw
//! pass bit-identically to the fresh fit — and because guide types
//! already certified the guide against its model at admission time, the
//! reuse is *sound by construction* (the paper's compatibility theorem),
//! not an approximation heuristic.
//!
//! # Idempotence
//!
//! The artifact id is a content hash over every fit input, computable
//! before the fit runs; re-fitting an identical request short-circuits to
//! `200` with `"created": false` and runs **zero** executions — the same
//! discipline `POST /v1/models` applies to re-submissions.
//!
//! # Error codes
//!
//! New stable codes follow the existing families: `fit.nonfinite` (the
//! optimiser diverged; a 400, the config's fault), `fit.persist` (disk
//! I/O failed; the only 500), `artifact.not_found`,
//! `artifact.model_mismatch`, and `artifact.version` on the warm query
//! path.  Client mistakes are never a 500.

use crate::api::{
    acquire_slot, bad_schema, decode_observation, decode_param, find_model, from_session_error,
    opt_f64, opt_u64, parse_body, query_response_json, real_args, ApiError, App,
};
use crate::http::{Request, Response};
use crate::json::Json;
use crate::registry::ModelEntry;
use guide_ppl::query::VI_POSTERIOR_PARTICLES;
use guide_ppl::{sample_to_artifact_obs, Method, SessionError};
use ppl_dist::Sample;
use ppl_inference::{ParamSpec, ViConfig};
use ppl_semantics::value::Value;
use ppl_store::{compute_id, Artifact, FitConfig, FitParam, StoreError, ARTIFACT_FORMAT_VERSION};
use std::sync::Arc;
use std::time::Instant;

/// Handles `POST /v1/fit`: runs (or reuses) a VI fit and persists it as
/// an artifact.
///
/// Wire format:
///
/// ```json
/// {
///   "model": "weight",
///   "observations": [9.0, 9.0],
///   "seed": 11,
///   "fit": {"iterations": 100, "samples_per_iteration": 8,
///           "learning_rate": 0.08, "fd_epsilon": 0.0001,
///           "params": [{"name": "mu", "init": 0.0}]},
///   "threads": 1,
///   "block": 64,
///   "model_args": []
/// }
/// ```
///
/// Every `fit` field defaults like the `/v1/query` VI method does
/// (`params` to the registry's initial variational parameters); `threads`
/// and `block` are perf knobs excluded from the artifact id.
pub fn fit(app: &Arc<App>, req: &Request) -> Result<Response, ApiError> {
    // Fits run many optimisation steps, so they get their own (small)
    // concurrency cap: a burst of fits sheds with a 429 instead of
    // starving the query lanes.
    let _slot = acquire_slot(app, &app.inflight_fit, app.limits.fit_concurrency, "fit")?;
    let doc = parse_body(req)?;
    let entry = find_model(app, &doc)?;
    entry.record_fit();

    let observations: Vec<Sample> = match doc.get("observations") {
        None => Vec::new(),
        Some(json) => {
            let items = json
                .as_arr()
                .ok_or_else(|| bad_schema("'observations' must be an array"))?;
            items
                .iter()
                .enumerate()
                .map(|(i, item)| decode_observation(i, item))
                .collect::<Result<_, _>>()?
        }
    };
    let seed = opt_u64(&doc, "seed")?.unwrap_or(0);
    let threads = opt_u64(&doc, "threads")?.unwrap_or(1).max(1) as usize;
    let block = opt_u64(&doc, "block")?
        .map(|n| (n as usize).max(1))
        .unwrap_or(app.default_block);
    let model_args = real_args(&doc, "model_args")?;
    // Like threads/block, the deadline is a serving knob excluded from the
    // artifact id: it never changes what a successful fit produces.
    let cancel = app.request_token(opt_u64(&doc, "deadline_ms")?);

    let fit_doc = match doc.get("fit") {
        None => &Json::Obj(Vec::new()),
        Some(json @ Json::Obj(_)) => json,
        Some(_) => return Err(bad_schema("'fit' must be an object")),
    };
    let mut config = ViConfig::default();
    if let Some(n) = opt_u64(fit_doc, "iterations")? {
        config.iterations = n as usize;
    }
    if let Some(n) = opt_u64(fit_doc, "samples_per_iteration")? {
        config.samples_per_iteration = n as usize;
    }
    if let Some(x) = opt_f64(fit_doc, "learning_rate")? {
        config.learning_rate = x;
    }
    if let Some(x) = opt_f64(fit_doc, "fd_epsilon")? {
        config.fd_epsilon = x;
    }
    let params: Vec<ParamSpec> = match fit_doc.get("params") {
        Some(json) => {
            let items = json
                .as_arr()
                .ok_or_else(|| bad_schema("'fit.params' must be an array"))?;
            items
                .iter()
                .map(decode_param)
                .collect::<Result<Vec<_>, _>>()?
        }
        None => entry
            .guide_param_defaults
            .iter()
            .map(|p| {
                if p.positive {
                    ParamSpec::positive(&p.name, p.init)
                } else {
                    ParamSpec::unconstrained(&p.name, p.init)
                }
            })
            .collect(),
    };

    // The fit schedules iterations × samples joint executions; the same
    // per-model budget as every other request applies.
    let cost = (config.iterations as u64).saturating_mul(config.samples_per_iteration as u64);
    if cost > entry.max_request_executions {
        return Err(ApiError::new(
            400,
            "request.limit",
            format!(
                "the fit schedules {cost} joint executions, above this model's per-request limit of {}",
                entry.max_request_executions
            ),
        )
        .with("limit", Json::Num(entry.max_request_executions as f64)));
    }

    let schema: Vec<FitParam> = params
        .iter()
        .map(|p| FitParam {
            name: p.name.clone(),
            init: p.init,
            positive: p.positive,
        })
        .collect();
    let fit_config = FitConfig {
        iterations: config.iterations,
        samples_per_iteration: config.samples_per_iteration,
        learning_rate: config.learning_rate,
        fd_epsilon: config.fd_epsilon,
    };
    let obs_lits: Vec<_> = observations.iter().map(sample_to_artifact_obs).collect();
    let arg_reals: Vec<f64> = model_args
        .iter()
        .map(|v| match v {
            Value::Real(x) => *x,
            // real_args only produces Real values.
            _ => f64::NAN,
        })
        .collect();

    // Fits are bit-deterministic, so the artifact id is computable before
    // the fit runs — an identical request reuses the stored artifact with
    // zero executions.
    let id = compute_id(&entry.id, &obs_lits, &arg_reals, &schema, &fit_config, seed);
    if let Some(existing) = app.store.get(&id) {
        return Ok(fit_response(200, &existing, false));
    }

    let query = entry
        .session
        .query()
        .observe(observations)
        .seed(seed)
        .threads(threads)
        .block(block)
        .model_args(model_args)
        .cancel(cancel)
        .build()
        .map_err(|e| from_session_error(SessionError::Query(e)))?;
    let started = Instant::now();
    // An expired or drained token aborts fit_vi with a structured error
    // before `store.put` runs — a cancelled fit never persists an
    // artifact.
    let vi_fit = {
        let _span = ppl_obs::Span::enter(ppl_obs::Phase::InferFit);
        query.fit_vi(&params, &config).map_err(from_session_error)?
    };
    entry.record_execution(cost, started.elapsed().as_nanos() as u64);

    if vi_fit.result.params.iter().any(|p| !p.is_finite()) {
        return Err(ApiError::new(
            400,
            "fit.nonfinite",
            "the fit diverged to non-finite parameters; lower the learning rate or \
             increase samples_per_iteration",
        ));
    }

    let trace_len = vi_fit.result.elbo_trace.len();
    let tail_len = (trace_len / 10).max(1);
    let artifact = Artifact {
        version: ARTIFACT_FORMAT_VERSION,
        id,
        model_id: entry.id.clone(),
        seed,
        observations: obs_lits,
        model_args: arg_reals,
        schema,
        config: fit_config,
        params: vi_fit.result.params.clone(),
        fit_iterations: trace_len as u64,
        elbo_tail: vi_fit.result.elbo_trace[trace_len - tail_len..].to_vec(),
        rng_state: vi_fit.rng_state,
        rng_inc: vi_fit.rng_inc,
    };
    let (id, created) = app.store.put(artifact).map_err(store_error)?;
    let stored = app.store.get(&id).expect("just inserted");
    Ok(fit_response(
        if created { 201 } else { 200 },
        &stored,
        created,
    ))
}

/// Handles `GET /v1/artifacts`: the deterministic (id-sorted) listing.
pub fn list_artifacts(app: &Arc<App>) -> Response {
    let artifacts = app.store.list();
    let body = Json::Obj(vec![
        (
            "artifacts".into(),
            Json::Arr(artifacts.iter().map(|a| artifact_json(a)).collect()),
        ),
        ("count".into(), Json::Num(artifacts.len() as f64)),
        ("bytes".into(), Json::Num(app.store.bytes() as f64)),
        (
            "warm_starts".into(),
            Json::Num(app.store.warm_starts() as f64),
        ),
    ]);
    Response::json(200, body.write().expect("finite"))
}

/// Handles `GET /v1/artifacts/{id}`.
pub fn get_artifact(app: &Arc<App>, id: &str) -> Result<Response, ApiError> {
    let artifact = app.store.get(id).ok_or_else(|| unknown_artifact(404, id))?;
    Ok(Response::json(
        200,
        artifact_json(&artifact).write().expect("finite"),
    ))
}

/// Handles `DELETE /v1/artifacts/{id}`.
pub fn delete_artifact(app: &Arc<App>, id: &str) -> Result<Response, ApiError> {
    if !app.store.delete(id) {
        return Err(unknown_artifact(404, id));
    }
    let body = Json::Obj(vec![("deleted".into(), Json::str(id))]);
    Ok(Response::json(200, body.write().expect("finite")))
}

/// Handles `POST /v1/query` with an `"artifact"` field: draws from the
/// fitted guide with **zero fit executions**, bit-identical to the fresh
/// fit-then-draw at the artifact's seed.
pub(crate) fn artifact_query(
    app: &Arc<App>,
    doc: &Json,
    entry: &Arc<ModelEntry>,
) -> Result<Response, ApiError> {
    // The artifact pins the fit's seed, observations, and parameters; a
    // request that also supplies them is ambiguous and rejected outright.
    for key in ["method", "seed", "observations", "model_args", "guide_args"] {
        if doc.get(key).is_some() {
            return Err(bad_schema(format!(
                "'{key}' conflicts with 'artifact': the artifact pins the fit's seed, \
                 observations, and parameters"
            )));
        }
    }
    let id = doc
        .get("artifact")
        .and_then(Json::as_str)
        .ok_or_else(|| bad_schema("'artifact' must be a string artifact id"))?;
    let draw_particles = opt_u64(doc, "draw_particles")?.map(|n| n as usize);
    let threads = opt_u64(doc, "threads")?.unwrap_or(1).max(1) as usize;
    let block = opt_u64(doc, "block")?
        .map(|n| (n as usize).max(1))
        .unwrap_or(app.default_block);
    let sample_index = opt_u64(doc, "sample_index")?.unwrap_or(0) as usize;
    let cancel = app.request_token(opt_u64(doc, "deadline_ms")?);

    let artifact = app.store.get(id).ok_or_else(|| unknown_artifact(400, id))?;
    if artifact.model_id != entry.id {
        return Err(ApiError::new(
            400,
            "artifact.model_mismatch",
            format!(
                "artifact '{id}' was fitted for model '{}', not '{}'",
                artifact.model_id, entry.id
            ),
        )
        .with("artifact_model", Json::str(artifact.model_id.clone()))
        .with("model", Json::str(entry.id.clone())));
    }
    if artifact.version != ARTIFACT_FORMAT_VERSION {
        return Err(ApiError::new(
            400,
            "artifact.version",
            format!(
                "artifact '{id}' has format version {}, not the supported version \
                 {ARTIFACT_FORMAT_VERSION}",
                artifact.version
            ),
        ));
    }
    let draws = draw_particles.unwrap_or(VI_POSTERIOR_PARTICLES) as u64;
    if draws > entry.max_request_executions {
        return Err(ApiError::new(
            400,
            "request.limit",
            format!(
                "the draw pass schedules {draws} joint executions, above this model's \
                 per-request limit of {}",
                entry.max_request_executions
            ),
        )
        .with("limit", Json::Num(entry.max_request_executions as f64)));
    }

    // The artifact id is a content hash and fits are deterministic, so
    // (model, artifact, draw count, statistic) is an injective key.
    let fingerprint = format!(
        "model={};artifact={id};d={draws};idx={sample_index}",
        entry.id
    );
    if let Some(body) = app.cache.get(&fingerprint) {
        return Ok(Response::json(200, body.to_string()).with_header("X-Cache", "hit"));
    }

    let query = entry
        .session
        .query()
        .threads(threads)
        .block(block)
        .cancel(cancel)
        .vi_from_artifact(&artifact)
        .map_err(|e| from_session_error(SessionError::Query(e)))?;
    let started = Instant::now();
    // An artifact replay skips the fit and only draws — `infer.draw`,
    // unlike a cold VI query whose run is dominated by `infer.fit`.
    let posterior = {
        let _span = ppl_obs::Span::enter(ppl_obs::Phase::InferDraw);
        query
            .run_vi_warm(&artifact, draw_particles)
            .map_err(from_session_error)?
    };
    app.store.record_warm_start();
    entry.record_execution(draws, started.elapsed().as_nanos() as u64);

    // Render through the same response function as a fresh VI query, with
    // the artifact's provenance standing in for the request fields — this
    // is what makes the warm body byte-identical to the cold one.
    let method = Method::Vi {
        params: artifact
            .schema
            .iter()
            .map(|p| {
                if p.positive {
                    ParamSpec::positive(&p.name, p.init)
                } else {
                    ParamSpec::unconstrained(&p.name, p.init)
                }
            })
            .collect(),
        config: ViConfig {
            iterations: artifact.config.iterations,
            samples_per_iteration: artifact.config.samples_per_iteration,
            learning_rate: artifact.config.learning_rate,
            fd_epsilon: artifact.config.fd_epsilon,
            ..ViConfig::default()
        },
        draw_particles,
    };
    let body: Arc<str> =
        query_response_json(&entry.id, &method, artifact.seed, &posterior, sample_index)
            .write()
            .expect("response bodies map non-finite statistics to null")
            .into();
    app.cache.insert(fingerprint, Arc::clone(&body));
    Ok(Response::json(200, body.to_string()).with_header("X-Cache", "miss"))
}

fn unknown_artifact(status: u16, id: &str) -> ApiError {
    ApiError::new(
        status,
        "artifact.not_found",
        format!("no artifact '{id}' in the store"),
    )
}

fn store_error(err: StoreError) -> ApiError {
    match &err {
        // Disk trouble is a server fault: the fit succeeded but could not
        // be persisted.
        StoreError::Io { .. } => ApiError::new(500, "fit.persist", err.to_string()),
        StoreError::Encode => ApiError::new(400, "fit.nonfinite", err.to_string()),
        StoreError::Artifact(e) => ApiError::new(400, e.code(), err.to_string()),
    }
}

/// The wire representation of one artifact (listing, `GET`, and the
/// `/v1/fit` response).
fn artifact_json(a: &Artifact) -> Json {
    let final_elbo = if a.elbo_tail.is_empty() {
        Json::Null
    } else {
        Json::num_or_null(a.elbo_tail.iter().sum::<f64>() / a.elbo_tail.len() as f64)
    };
    Json::Obj(vec![
        ("id".into(), Json::str(a.id.clone())),
        ("model".into(), Json::str(a.model_id.clone())),
        ("version".into(), Json::Num(a.version as f64)),
        ("seed".into(), Json::Num(a.seed as f64)),
        (
            "observations".into(),
            Json::Num(a.observations.len() as f64),
        ),
        (
            "config".into(),
            Json::Obj(vec![
                ("iterations".into(), Json::Num(a.config.iterations as f64)),
                (
                    "samples_per_iteration".into(),
                    Json::Num(a.config.samples_per_iteration as f64),
                ),
                (
                    "learning_rate".into(),
                    Json::num_or_null(a.config.learning_rate),
                ),
                ("fd_epsilon".into(), Json::num_or_null(a.config.fd_epsilon)),
            ]),
        ),
        (
            "params".into(),
            Json::Arr(
                a.schema
                    .iter()
                    .zip(&a.params)
                    .map(|(p, &value)| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(p.name.clone())),
                            ("value".into(), Json::num_or_null(value)),
                            ("positive".into(), Json::Bool(p.positive)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("fit_iterations".into(), Json::Num(a.fit_iterations as f64)),
        ("final_elbo".into(), final_elbo),
    ])
}

fn fit_response(status: u16, artifact: &Artifact, created: bool) -> Response {
    let mut fields = match artifact_json(artifact) {
        Json::Obj(fields) => fields,
        _ => unreachable!("artifact_json returns an object"),
    };
    fields.push(("created".into(), Json::Bool(created)));
    Response::json(status, Json::Obj(fields).write().expect("finite"))
}
