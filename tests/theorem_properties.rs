//! Property-based tests for the paper's metatheory, instantiated on the
//! benchmark programs:
//!
//! * **Theorem 4.4** — evaluation of a well-typed command against any
//!   traces produces well-typed traces and a well-typed value;
//! * **Theorems 4.5/4.6** — every well-typed trace drives evaluation to
//!   completion, with strictly positive weight when the relevant protocols
//!   are ⊕-/&-free;
//! * **Theorem B.8 / Corollary B.9** — the reduction relation holds exactly
//!   when evaluation yields a positive weight;
//! * **Theorem 5.2** — model and guide have the same set of possible latent
//!   traces (absolute continuity), exercised by cross-scoring traces
//!   generated from either program.

use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;
use ppl_semantics::{generate_trace, trace_has_type, EvalError, Evaluator, GeneratorConfig, Trace};
use ppl_types::infer_program;

/// The latent protocol of a top-level run: the inferred operator
/// instantiation `T[1]`, unfolded once (a top-level run does not consume a
/// leading `fold` marker, cf. the (EM:Call) rule which only applies to
/// inner calls).
fn top_level_protocol(env: &ppl_types::TypeEnv, ty: &ppl_types::GuideType) -> ppl_types::GuideType {
    match ty {
        ppl_types::GuideType::App(op, arg) => env.defs.unfold(op, arg).expect("defined operator"),
        other => other.clone(),
    }
}

/// Builds (model program, guide program, benchmark) triples for a selection
/// of benchmarks with non-trivial control flow.
fn selected_benchmarks() -> Vec<(
    ppl_syntax::Program,
    ppl_syntax::Program,
    ppl_models::Benchmark,
)> {
    ["ex-1", "branching", "coin", "hmm", "geometric", "ex-2"]
        .iter()
        .map(|name| {
            let b = ppl_models::benchmark(name).unwrap();
            (
                b.parsed_model().unwrap().unwrap(),
                b.parsed_guide().unwrap().unwrap(),
                b,
            )
        })
        .collect()
}

/// Generates a random observation trace matching the model's obs protocol.
fn obs_trace(b: &ppl_models::Benchmark) -> Trace {
    use ppl_semantics::Message;
    Trace::from_messages(
        b.observations
            .iter()
            .map(|s| Message::ValP(*s))
            .collect::<Vec<_>>(),
    )
}

#[test]
fn theorem_4_5_and_4_6_well_typed_traces_evaluate_with_positive_weight() {
    let config = GeneratorConfig {
        then_probability: 0.7,
        max_messages: 2_000,
    };
    let mut rng = Pcg32::seed_from_u64(17);
    for (model, guide, b) in selected_benchmarks() {
        let model_env = infer_program(&model).unwrap();
        let guide_env = infer_program(&guide).unwrap();
        let latent_ty = top_level_protocol(
            &model_env,
            &model_env
                .consumed_protocol(&b.model_proc.into())
                .expect("model consumes latent"),
        );
        let guide_latent_ty = top_level_protocol(
            &guide_env,
            &guide_env
                .provided_protocol(&b.guide_proc.into())
                .expect("guide provides latent"),
        );
        let model_eval = Evaluator::new(&model);
        let guide_eval = Evaluator::new(&guide);
        let obs = obs_trace(&b);
        let mut successes = 0;
        for _ in 0..200 {
            // Generate a latent trace that is well-typed at the *model's*
            // protocol.  The generator follows the guide-type structure, so
            // the trace is the body of an inner call; prepend no fold (the
            // protocol is already the top-level instantiation T[1]).
            let Some(latent) = generate_trace(&model_env.defs, &latent_ty, &mut rng, &config)
            else {
                continue;
            };
            assert!(
                trace_has_type(&model_env.defs, &latent, &latent_ty),
                "{}: generator produced an ill-typed trace",
                b.name
            );
            // Theorem 4.5 for the model: evaluation of a well-typed trace
            // always succeeds.  (Theorem 4.6's strict positivity does *not*
            // apply to the model, whose latent protocol contains `&`: a
            // randomly generated branch selection may contradict the
            // predicate, giving weight zero.)
            let result = model_eval
                .run_proc(&b.model_proc.into(), &[], &latent, &obs)
                .unwrap_or_else(|e| panic!("{}: model stuck on a well-typed trace: {e}", b.name));
            let model_positive = result.log_weight > f64::NEG_INFINITY;
            // Theorem 5.2 direction 1: the same latent trace is possible for
            // the guide (same support), provided the trace also matches the
            // guide's (equal) protocol.
            assert!(
                trace_has_type(&guide_env.defs, &latent, &guide_latent_ty),
                "{}: model-typed trace is not guide-typed",
                b.name
            );
            if b.guide_params.is_empty() {
                // Theorem 4.6 for the guide: its provided latent protocol is
                // ⊕-free, so evaluation succeeds with strictly positive
                // weight.
                let guide_result = guide_eval
                    .run_proc(&b.guide_proc.into(), &[], &Trace::new(), &latent)
                    .unwrap_or_else(|e| {
                        panic!("{}: guide stuck on a model-supported trace: {e}", b.name)
                    });
                assert!(guide_result.log_weight > f64::NEG_INFINITY, "{}", b.name);
            }
            if model_positive {
                successes += 1;
            }
        }
        // Some generated traces agree with the model's branch predicates, so
        // a healthy fraction must have strictly positive model weight.
        assert!(successes > 20, "{}: too few positive-weight traces", b.name);
    }
}

#[test]
fn theorem_4_4_evaluation_produces_well_typed_results() {
    // Run the guide generatively via the joint executor, then check that
    // the recorded latent trace is well-typed at the inferred protocol and
    // that the model's result value is well-typed at its declared type.
    use ppl_runtime::{JointExecutor, JointSpec, LatentSource};
    let mut rng = Pcg32::seed_from_u64(5);
    for (model, guide, b) in selected_benchmarks() {
        if !b.guide_params.is_empty() {
            continue;
        }
        let model_env = infer_program(&model).unwrap();
        let latent_ty = top_level_protocol(
            &model_env,
            &model_env.consumed_protocol(&b.model_proc.into()).unwrap(),
        );
        let exec = JointExecutor::new(&model, &guide, b.observations.clone());
        let spec = JointSpec::new(b.model_proc, b.guide_proc);
        let declared_ret = &model.proc_named(b.model_proc).unwrap().ret_ty;
        for _ in 0..100 {
            let joint = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
            assert!(
                trace_has_type(&model_env.defs, &joint.latent, &latent_ty),
                "{}: joint execution produced an ill-typed latent trace {}",
                b.name,
                joint.latent
            );
            assert!(
                joint.model_value.has_type(declared_ret)
                    || *declared_ret == ppl_syntax::BaseType::Unit,
                "{}: ill-typed result {:?} at {declared_ret}",
                b.name,
                joint.model_value
            );
        }
    }
}

#[test]
fn theorem_b8_reduction_iff_positive_weight() {
    // For the Fig. 5 model: traces with mismatched branch selections have
    // zero weight and are not reducible; well-formed traces have positive
    // weight and are reducible.
    use ppl_semantics::Message;
    let b = ppl_models::benchmark("ex-1").unwrap();
    let model = b.parsed_model().unwrap().unwrap();
    let evaluator = Evaluator::new(&model);
    let reducer = Evaluator::reducer(&model);
    let obs = obs_trace(&b);
    let mut rng = Pcg32::seed_from_u64(3);
    let mut checked = 0;
    for _ in 0..500 {
        // Random candidate traces, valid and invalid.
        let x = rng.next_f64() * 4.0;
        let take_then = rng.next_f64() < 0.5;
        let mut latent = Trace::new();
        latent.push(Message::ValP(Sample::Real(x)));
        latent.push(Message::DirC(take_then));
        if !take_then {
            latent.push(Message::ValP(Sample::Real(rng.next_open01())));
        }
        let eval = evaluator.run_proc(&"Model".into(), &[], &latent, &obs);
        let red = reducer.run_proc(&"Model".into(), &[], &latent, &obs);
        match eval {
            Ok(e) => {
                let positive = e.log_weight > f64::NEG_INFINITY;
                assert_eq!(
                    positive,
                    red.is_ok(),
                    "reduction must hold iff the weight is positive (x = {x}, then = {take_then})"
                );
            }
            Err(EvalError::Stuck(_)) => {
                assert!(
                    red.is_err(),
                    "stuck evaluation must also be stuck reduction"
                );
            }
            Err(other) => panic!("unexpected error {other}"),
        }
        checked += 1;
    }
    assert_eq!(checked, 500);
}

#[test]
fn theorem_5_2_guide_generated_traces_are_model_supported() {
    // Direction 2 of the support equality: traces produced by running the
    // guide (via joint execution) always have non-zero model density —
    // except on a null set; here we simply require finiteness for every
    // draw, which holds because supports match exactly.
    use ppl_runtime::{JointExecutor, JointSpec, LatentSource};
    let mut rng = Pcg32::seed_from_u64(77);
    for (model, guide, b) in selected_benchmarks() {
        if !b.guide_params.is_empty() {
            continue;
        }
        let exec = JointExecutor::new(&model, &guide, b.observations.clone());
        let spec = JointSpec::new(b.model_proc, b.guide_proc);
        for _ in 0..200 {
            let joint = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
            assert!(
                joint.log_model.is_finite(),
                "{}: guide proposed a trace outside the model's support",
                b.name
            );
            assert!(joint.log_guide.is_finite(), "{}", b.name);
        }
    }
}

#[test]
fn incompatible_pair_violates_absolute_continuity_dynamically() {
    // The unsound Guide1' of Fig. 3: guide-generated traces fall outside
    // the model's support with non-negligible probability — the dynamic
    // counterpart of the static rejection.
    use ppl_models::sources;
    use ppl_runtime::{JointExecutor, JointSpec, LatentSource, RuntimeError};
    let model = ppl_syntax::parse_program(sources::EX1_MODEL).unwrap();
    let guide = ppl_syntax::parse_program(sources::EX1_BAD_GUIDE).unwrap();
    let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.8)]);
    let spec = JointSpec::new("Model", "Guide1Bad");
    let mut rng = Pcg32::seed_from_u64(9);
    let mut bad = 0;
    for _ in 0..100 {
        match exec.run(&spec, LatentSource::FromGuide, &mut rng) {
            Ok(r) if r.log_model == f64::NEG_INFINITY => bad += 1,
            Ok(_) => {}
            Err(RuntimeError::ProtocolViolation(_)) => bad += 1,
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(
        bad > 50,
        "expected most runs to violate absolute continuity, got {bad}/100"
    );
}
