//! The [`Recorder`]: ambient per-request traces, per-(route, phase)
//! latency histograms, a bounded ring of completed traces, and
//! engine-quality gauges.
//!
//! The ambient trace is thread-local, which matches the serving stack's
//! thread-per-request worker model: one worker thread runs read → handle
//! → write for a connection, so `Span`s dropped anywhere under the
//! handler land in the right request's trace without passing a context
//! handle through every call.
//!
//! Lock discipline: the histogram matrix is plain relaxed atomics (no
//! lock, no allocation); the completed-trace ring takes a short `Mutex`
//! once per request at `finish`.  Nothing here is on the per-particle
//! engine path.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::span::{Phase, NUM_PHASES};

/// Number of power-of-two latency bins per (route, phase) histogram.
/// Bin `i` covers `[2^i, 2^(i+1))` nanoseconds; bin 39 tops out above
/// nine minutes, far beyond any serving deadline.
const HIST_BINS: usize = 40;

/// FNV-1a 64-bit hash over a sequence of byte slices, with a length
/// marker between parts so `("ab", "c")` and `("a", "bc")` differ.
///
/// This is the deterministic half of a trace id: hash the request's
/// method, path, and body, and the same request always contributes the
/// same 64 bits — no RNG involved.
pub fn request_hash(parts: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for part in parts {
        for &byte in *part {
            eat(byte);
        }
        for &byte in (part.len() as u64).to_le_bytes().iter() {
            eat(byte);
        }
    }
    hash
}

/// Ambient trace state for the current thread.
struct ActiveTrace {
    id: String,
    started: Instant,
    phase_nanos: [u64; NUM_PHASES],
    engine: Vec<(String, f64)>,
    notes: Vec<(&'static str, String)>,
}

/// Identity of the most recently finished trace on this thread, kept so
/// the transport layer can attribute the `http.write` phase (which runs
/// after the handler, and therefore after `finish`) to the right trace.
struct LastFinished {
    id: String,
    route_index: usize,
}

thread_local! {
    /// Fast flag consulted by `Span::enter`: `Cell<bool>` carries no
    /// destructor, so probing it never allocates, even on first touch.
    static TRACE_ACTIVE: Cell<bool> = const { Cell::new(false) };
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
    static LAST_FINISHED: RefCell<Option<LastFinished>> = const { RefCell::new(None) };
    static PENDING_READ_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// Whether a trace is active on the current thread.
#[inline]
pub fn tracing_active() -> bool {
    TRACE_ACTIVE.with(|flag| flag.get())
}

/// Add `nanos` to `phase` of the current thread's active trace, if any.
#[inline]
pub fn record_phase_nanos(phase: Phase, nanos: u64) {
    if !tracing_active() {
        return;
    }
    ACTIVE.with(|slot| {
        if let Some(trace) = slot.borrow_mut().as_mut() {
            trace.phase_nanos[phase.index()] =
                trace.phase_nanos[phase.index()].saturating_add(nanos);
        }
    });
}

/// Trace id of the current thread's active trace, if any.
pub fn current_trace_id() -> Option<String> {
    if !tracing_active() {
        return None;
    }
    ACTIVE.with(|slot| slot.borrow().as_ref().map(|trace| trace.id.clone()))
}

/// Attach a string annotation (e.g. `cache: "hit"`) to the active trace.
pub fn annotate(key: &'static str, value: String) {
    if !tracing_active() {
        return;
    }
    ACTIVE.with(|slot| {
        if let Some(trace) = slot.borrow_mut().as_mut() {
            trace.notes.push((key, value));
        }
    });
}

/// Attach engine diagnostics (name → value pairs) to the active trace.
pub fn annotate_engine(pairs: Vec<(String, f64)>) {
    if !tracing_active() {
        return;
    }
    ACTIVE.with(|slot| {
        if let Some(trace) = slot.borrow_mut().as_mut() {
            trace.engine.extend(pairs);
        }
    });
}

/// Snapshot of the active trace's per-phase nanoseconds so far.
pub fn span_snapshot() -> Option<[u64; NUM_PHASES]> {
    if !tracing_active() {
        return None;
    }
    ACTIVE.with(|slot| slot.borrow().as_ref().map(|trace| trace.phase_nanos))
}

/// Stash the time the transport spent reading the request, to be folded
/// into the next trace begun on this thread (the transport reads the
/// request *before* the handler — and therefore the trace — exists).
pub fn set_pending_read_nanos(nanos: u64) {
    PENDING_READ_NANOS.with(|slot| slot.set(nanos));
}

/// Take (and clear) the pending read time stashed by the transport.
pub fn take_pending_read_nanos() -> u64 {
    PENDING_READ_NANOS.with(|slot| slot.replace(0))
}

/// Take the identity of the most recently finished trace on this thread
/// (set by [`Recorder::finish`]); used by the transport to attribute the
/// `http.write` phase.  Returns `(trace_id, route_index)`.
pub fn take_last_finished() -> Option<(String, usize)> {
    LAST_FINISHED.with(|slot| {
        slot.borrow_mut()
            .take()
            .map(|last| (last.id, last.route_index))
    })
}

/// A completed request trace, as retained in the ring buffer.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    /// Trace id (`t-<hash><seq>`), also returned as `X-Ppl-Trace-Id`.
    pub id: String,
    /// Normalised route the request resolved to.
    pub route: &'static str,
    /// HTTP status of the response.
    pub status: u16,
    /// End-to-end handler time in nanoseconds (excludes `http.write`).
    pub total_nanos: u64,
    /// Per-phase accumulated nanoseconds, indexed by [`Phase::index`].
    pub phase_nanos: [u64; NUM_PHASES],
    /// Engine diagnostics attached during the request (name → value).
    pub engine: Vec<(String, f64)>,
    /// String annotations attached during the request (key → value).
    pub notes: Vec<(&'static str, String)>,
    /// Monotonic completion order (process-wide, starts at 0).
    pub seq: u64,
}

/// Latency summary for one (route, phase) histogram.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStat {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded nanoseconds (for means).
    pub sum_nanos: u64,
    /// Maximum recorded nanoseconds (exact).
    pub max_nanos: u64,
    /// Estimated 50th percentile in nanoseconds (bin upper bound).
    pub p50_nanos: u64,
    /// Estimated 90th percentile in nanoseconds (bin upper bound).
    pub p90_nanos: u64,
    /// Estimated 99th percentile in nanoseconds (bin upper bound).
    pub p99_nanos: u64,
}

/// Per-route phase summaries with at least one sample.
#[derive(Debug, Clone)]
pub struct RoutePhaseStats {
    /// The route these phases belong to.
    pub route: &'static str,
    /// `(phase, stats)` for every phase with `count > 0`.
    pub phases: Vec<(Phase, PhaseStat)>,
}

/// One (route, phase) histogram cell: log₂ bins + count/sum/max.
struct HistCell {
    bins: [AtomicU64; HIST_BINS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    fn new() -> HistCell {
        HistCell {
            bins: [const { AtomicU64::new(0) }; HIST_BINS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, nanos: u64) {
        let bin = bin_index(nanos);
        self.bins[bin].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    fn stat(&self) -> PhaseStat {
        let count = self.count.load(Ordering::Relaxed);
        let mut snapshot = [0u64; HIST_BINS];
        for (slot, bin) in snapshot.iter_mut().zip(self.bins.iter()) {
            *slot = bin.load(Ordering::Relaxed);
        }
        let total: u64 = snapshot.iter().sum();
        PhaseStat {
            count,
            sum_nanos: self.sum.load(Ordering::Relaxed),
            max_nanos: self.max.load(Ordering::Relaxed),
            p50_nanos: quantile(&snapshot, total, 0.50),
            p90_nanos: quantile(&snapshot, total, 0.90),
            p99_nanos: quantile(&snapshot, total, 0.99),
        }
    }
}

/// Bin index for `nanos`: bin `i` covers `[2^i, 2^(i+1))`.
fn bin_index(nanos: u64) -> usize {
    let n = nanos.max(1);
    ((63 - n.leading_zeros()) as usize).min(HIST_BINS - 1)
}

/// Conservative quantile: upper bound of the bin containing the target
/// rank, in nanoseconds.  Zero when the histogram is empty.
fn quantile(bins: &[u64; HIST_BINS], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, &weight) in bins.iter().enumerate() {
        cumulative += weight;
        if cumulative >= target {
            return 1u64 << (i + 1).min(63);
        }
    }
    1u64 << 63
}

/// Gauge that tracks the minimum `f64` observed, atomically.
struct MinGauge {
    bits: AtomicU64,
    seen: AtomicBool,
}

impl MinGauge {
    fn new() -> MinGauge {
        MinGauge {
            bits: AtomicU64::new(f64::INFINITY.to_bits()),
            seen: AtomicBool::new(false),
        }
    }

    fn observe(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.seen.store(true, Ordering::Relaxed);
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            if value >= f64::from_bits(current) {
                return;
            }
            match self.bits.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    fn get(&self) -> Option<f64> {
        if self.seen.load(Ordering::Relaxed) {
            Some(f64::from_bits(self.bits.load(Ordering::Relaxed)))
        } else {
            None
        }
    }
}

/// The process-wide flight recorder.
///
/// Owns the per-(route, phase) histogram matrix, the ring of completed
/// traces, and the engine-quality gauges.  One `Recorder` is shared (via
/// `Arc`) between the request handler and the transport layer.
pub struct Recorder {
    routes: &'static [&'static str],
    enabled: AtomicBool,
    seq: AtomicU64,
    hists: Vec<HistCell>,
    ring: Mutex<VecDeque<CompletedTrace>>,
    ring_capacity: usize,
    min_ess: MinGauge,
    min_acceptance: MinGauge,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .field("ring_capacity", &self.ring_capacity)
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// Build a recorder over the given route table, retaining the last
    /// `ring_capacity` completed traces (clamped to at least 1).
    pub fn new(routes: &'static [&'static str], ring_capacity: usize) -> Recorder {
        let capacity = ring_capacity.max(1);
        let cells = routes.len() * NUM_PHASES;
        Recorder {
            routes,
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            hists: (0..cells).map(|_| HistCell::new()).collect(),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            ring_capacity: capacity,
            min_ess: MinGauge::new(),
            min_acceptance: MinGauge::new(),
        }
    }

    /// Turn tracing on or off process-wide.  When off, `begin` is a
    /// no-op and spans stay inert.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the recorder is currently accepting traces.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Ring buffer capacity (completed traces retained).
    pub fn ring_capacity(&self) -> usize {
        self.ring_capacity
    }

    /// Begin a trace for the current thread and return its id.
    ///
    /// The id is `t-<hash:016x><seq:08x>`: `hash` is the caller-supplied
    /// request fingerprint (see [`request_hash`]) and `seq` is a process
    /// epoch counter, so concurrent identical requests still get
    /// distinct ids and the RNG is never consulted.  Returns `None`
    /// (and installs nothing) when the recorder is disabled.
    pub fn begin(&self, fingerprint: u64) -> Option<String> {
        if !self.enabled() {
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let id = format!("t-{fingerprint:016x}{:08x}", seq & 0xffff_ffff);
        let trace = ActiveTrace {
            id: id.clone(),
            started: Instant::now(),
            phase_nanos: [0; NUM_PHASES],
            engine: Vec::new(),
            notes: Vec::new(),
        };
        ACTIVE.with(|slot| *slot.borrow_mut() = Some(trace));
        TRACE_ACTIVE.with(|flag| flag.set(true));
        Some(id)
    }

    /// Finish the current thread's active trace: fold its phase timings
    /// into the (route, phase) histograms, push it onto the ring
    /// (evicting the oldest when full), and remember its identity for
    /// the transport's `http.write` attribution.  Returns the trace id.
    pub fn finish(&self, route: &'static str, status: u16) -> Option<String> {
        let trace = ACTIVE.with(|slot| slot.borrow_mut().take());
        TRACE_ACTIVE.with(|flag| flag.set(false));
        let trace = trace?;
        let total_nanos = trace.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let route_index = self.route_index(route);
        for (phase_index, &nanos) in trace.phase_nanos.iter().enumerate() {
            if nanos > 0 {
                self.cell(route_index, phase_index).record(nanos);
            }
        }
        let completed = CompletedTrace {
            id: trace.id.clone(),
            route: self.routes[route_index],
            status,
            total_nanos,
            phase_nanos: trace.phase_nanos,
            engine: trace.engine,
            notes: trace.notes,
            seq: 0,
        };
        let id = completed.id.clone();
        {
            let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
            let mut completed = completed;
            completed.seq = ring.back().map_or(0, |t| t.seq + 1);
            if ring.len() == self.ring_capacity {
                ring.pop_front();
            }
            ring.push_back(completed);
        }
        LAST_FINISHED.with(|slot| {
            *slot.borrow_mut() = Some(LastFinished {
                id: id.clone(),
                route_index,
            });
        });
        Some(id)
    }

    /// Discard the current thread's active trace without recording it
    /// (used when a handler panics mid-request).
    pub fn discard(&self) {
        ACTIVE.with(|slot| *slot.borrow_mut() = None);
        TRACE_ACTIVE.with(|flag| flag.set(false));
    }

    /// Record the transport's `http.write` time for a finished trace:
    /// updates the (route, `http.write`) histogram and back-fills the
    /// ring entry with matching id.
    pub fn note_http_write(&self, id: &str, route_index: usize, nanos: u64) {
        if nanos == 0 {
            return;
        }
        let index = route_index.min(self.routes.len() - 1);
        self.cell(index, Phase::HttpWrite.index()).record(nanos);
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = ring.iter_mut().rev().find(|t| t.id == id) {
            entry.phase_nanos[Phase::HttpWrite.index()] =
                entry.phase_nanos[Phase::HttpWrite.index()].saturating_add(nanos);
        }
    }

    /// Feed the engine-quality gauges: minimum effective sample size and
    /// worst (lowest) MH acceptance rate seen since boot.
    pub fn observe_quality(&self, ess: Option<f64>, acceptance: Option<f64>) {
        if let Some(value) = ess {
            self.min_ess.observe(value);
        }
        if let Some(value) = acceptance {
            self.min_acceptance.observe(value);
        }
    }

    /// Minimum ESS observed since boot, if any run reported one.
    pub fn min_ess(&self) -> Option<f64> {
        self.min_ess.get()
    }

    /// Worst (lowest) MH acceptance rate observed since boot.
    pub fn worst_acceptance(&self) -> Option<f64> {
        self.min_acceptance.get()
    }

    /// Completed traces, newest first.
    pub fn recent(&self) -> Vec<CompletedTrace> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().rev().cloned().collect()
    }

    /// Number of traces currently retained.
    pub fn recorded(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Look up a completed trace by id (newest match wins).
    pub fn get(&self, id: &str) -> Option<CompletedTrace> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().rev().find(|t| t.id == id).cloned()
    }

    /// Per-route, per-phase latency summaries for every cell with at
    /// least one sample.
    pub fn phase_stats(&self) -> Vec<RoutePhaseStats> {
        let mut out = Vec::new();
        for (route_index, route) in self.routes.iter().enumerate() {
            let mut phases = Vec::new();
            for phase in crate::span::PHASES {
                let stat = self.cell(route_index, phase.index()).stat();
                if stat.count > 0 {
                    phases.push((phase, stat));
                }
            }
            if !phases.is_empty() {
                out.push(RoutePhaseStats { route, phases });
            }
        }
        out
    }

    fn route_index(&self, route: &str) -> usize {
        self.routes
            .iter()
            .position(|r| *r == route)
            .unwrap_or(self.routes.len() - 1)
    }

    fn cell(&self, route_index: usize, phase_index: usize) -> &HistCell {
        &self.hists[route_index * NUM_PHASES + phase_index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    static ROUTES: [&str; 3] = ["/a", "/b", "other"];

    #[test]
    fn request_hash_separates_parts() {
        assert_ne!(
            request_hash(&[b"ab", b"c"]),
            request_hash(&[b"a", b"bc"]),
            "length markers must keep part boundaries distinct"
        );
        assert_eq!(request_hash(&[b"x", b"y"]), request_hash(&[b"x", b"y"]));
    }

    #[test]
    fn begin_span_finish_records_phase_and_ring_entry() {
        let rec = Recorder::new(&ROUTES, 8);
        let id = rec.begin(0xdead_beef).expect("enabled recorder begins");
        {
            let span = Span::enter(Phase::InferDraw);
            assert!(span.is_armed());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        annotate("cache", "miss".to_string());
        annotate_engine(vec![("ess".to_string(), 42.0)]);
        let finished = rec.finish("/a", 200).expect("trace was active");
        assert_eq!(finished, id);
        assert!(!tracing_active());

        let trace = rec.get(&id).expect("trace retained in ring");
        assert!(trace.phase_nanos[Phase::InferDraw.index()] > 0);
        assert_eq!(trace.route, "/a");
        assert_eq!(trace.status, 200);
        assert_eq!(trace.engine, vec![("ess".to_string(), 42.0)]);
        assert_eq!(trace.notes, vec![("cache", "miss".to_string())]);

        let stats = rec.phase_stats();
        let route_a = stats.iter().find(|s| s.route == "/a").expect("route /a");
        let (_, draw) = route_a
            .phases
            .iter()
            .find(|(p, _)| *p == Phase::InferDraw)
            .expect("infer.draw recorded");
        assert_eq!(draw.count, 1);
        assert!(draw.max_nanos >= 1_000_000);
        assert!(
            draw.p50_nanos >= draw.max_nanos,
            "bin upper bound >= sample"
        );
    }

    #[test]
    fn ring_evicts_oldest_first_at_capacity() {
        let rec = Recorder::new(&ROUTES, 3);
        let mut ids = Vec::new();
        for i in 0..5u64 {
            let id = rec.begin(i).unwrap();
            rec.finish("/b", 200).unwrap();
            ids.push(id);
        }
        assert_eq!(rec.recorded(), 3);
        assert!(rec.get(&ids[0]).is_none(), "oldest evicted");
        assert!(rec.get(&ids[1]).is_none(), "second-oldest evicted");
        for id in &ids[2..] {
            assert!(rec.get(id).is_some(), "newest three retained");
        }
        let recent = rec.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].id, ids[4], "recent() is newest first");
        assert_eq!(recent[2].id, ids[2]);
        assert!(recent[0].seq > recent[2].seq);
    }

    #[test]
    fn disabled_recorder_begins_nothing_and_spans_stay_inert() {
        let rec = Recorder::new(&ROUTES, 4);
        rec.set_enabled(false);
        assert!(rec.begin(7).is_none());
        assert!(!tracing_active());
        let span = Span::enter(Phase::Validate);
        assert!(!span.is_armed());
        assert!(rec.finish("/a", 200).is_none());
        assert_eq!(rec.recorded(), 0);
    }

    #[test]
    fn concurrent_begins_yield_distinct_ids_for_identical_requests() {
        let rec = std::sync::Arc::new(Recorder::new(&ROUTES, 64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let rec = std::sync::Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                let id = rec.begin(0x1234).unwrap();
                rec.finish("/a", 200).unwrap();
                id
            }));
        }
        let mut ids: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 8, "same fingerprint, distinct epoch counters");
    }

    #[test]
    fn quality_gauges_track_minima() {
        let rec = Recorder::new(&ROUTES, 4);
        assert_eq!(rec.min_ess(), None);
        assert_eq!(rec.worst_acceptance(), None);
        rec.observe_quality(Some(250.0), None);
        rec.observe_quality(Some(900.0), Some(0.4));
        rec.observe_quality(Some(120.5), Some(0.62));
        rec.observe_quality(Some(f64::NAN), None);
        assert_eq!(rec.min_ess(), Some(120.5));
        assert_eq!(rec.worst_acceptance(), Some(0.4));
    }

    #[test]
    fn http_write_backfills_ring_and_histogram() {
        let rec = Recorder::new(&ROUTES, 4);
        let id = rec.begin(1).unwrap();
        rec.finish("/a", 200).unwrap();
        let (last_id, route_index) = take_last_finished().expect("finish sets last-finished");
        assert_eq!(last_id, id);
        assert_eq!(route_index, 0);
        rec.note_http_write(&id, route_index, 5_000);
        let trace = rec.get(&id).unwrap();
        assert_eq!(trace.phase_nanos[Phase::HttpWrite.index()], 5_000);
        let stats = rec.phase_stats();
        let route_a = stats.iter().find(|s| s.route == "/a").unwrap();
        assert!(route_a.phases.iter().any(|(p, _)| *p == Phase::HttpWrite));
    }

    #[test]
    fn pending_read_nanos_hand_off() {
        set_pending_read_nanos(123);
        assert_eq!(take_pending_read_nanos(), 123);
        assert_eq!(take_pending_read_nanos(), 0, "take clears the slot");
    }

    #[test]
    fn bin_index_is_monotone_log2() {
        assert_eq!(bin_index(0), 0);
        assert_eq!(bin_index(1), 0);
        assert_eq!(bin_index(2), 1);
        assert_eq!(bin_index(3), 1);
        assert_eq!(bin_index(1024), 10);
        assert_eq!(bin_index(u64::MAX), HIST_BINS - 1);
    }
}
