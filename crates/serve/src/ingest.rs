//! Model ingestion: `POST /v1/models` and the `/v1/models/{id}` lifecycle.
//!
//! This is where the paper's type system becomes an *admission-control
//! policy*.  A submission carries untrusted model and guide source text;
//! the server runs the full pipeline — parse, guide-type inference,
//! model–guide compatibility (the absolute-continuity certificate of
//! Theorem 5.2), compilation — and only a pair that passes every stage is
//! registered and becomes queryable through `/v1/query` / `/v1/batch`.
//! Every rejection is a structured `400` with a stable machine-readable
//! code (`parse.unexpected_token`, `type.guide_mismatch`, …) and, where
//! the offending program came from source text, a 1-based line:column
//! position.  Submissions never produce a `500` and never crash a worker.
//!
//! # Content-hash ids
//!
//! An admitted model is registered under `m-<16 hex>`: the SHA-256 of the
//! length-prefixed `(model_src, model_proc, guide_src, guide_proc)` tuple.
//! Identical sources therefore map to the same id — re-submission is
//! idempotent (`200` with `"created": false` instead of `201`) — and the
//! id is safe to embed in response-cache fingerprints: an id names exactly
//! one program pair forever, so cached bytes stay valid across eviction
//! and re-submission.
//!
//! # Resource fences
//!
//! Submitters are untrusted, so every stage is bounded:
//!
//! * source size — each source is capped at [`MAX_SOURCE_BYTES`]
//!   (`limit.source_bytes`), under the transport's 1 MiB body cap;
//! * parse depth — the parser rejects nesting beyond
//!   `ppl_syntax::MAX_PARSE_DEPTH` (`parse.depth`) instead of smashing the
//!   stack;
//! * compile fuel — programs larger than [`MAX_PROGRAM_NODES`] command
//!   nodes are rejected (`limit.compile_fuel`) before type inference,
//!   which bounds checker and compiler work (both linear in node count)
//!   and caps recursion over flat command chains;
//! * execution budget — admitted models carry
//!   [`crate::registry::MAX_USER_MODEL_EXECUTIONS`], a tenth of the
//!   builtin per-request budget, enforced by the same
//!   `MAX_REQUEST_EXECUTIONS` accounting as every other request;
//! * registry pressure — user models live in a bounded LRU table
//!   (builtins are never evicted).

use crate::api::{bad_schema, model_json, parse_body, ApiError, App};
use crate::http::{Request, Response};
use crate::json::Json;
use crate::registry::{ModelEntry, ModelOrigin, MAX_USER_MODEL_EXECUTIONS};
use guide_ppl::{Session, SessionError};
use ppl_store::sha::Sha256;
use ppl_syntax::{parse_program, ParseError, Program};
use ppl_types::infer_program;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Maximum byte length of each submitted source (model and guide
/// separately).
pub const MAX_SOURCE_BYTES: usize = 64 * 1024;

/// Maximum total command nodes across both programs (compile fuel).
///
/// Type checking, trace-type analysis, and compilation are linear in this
/// count, and several of those passes recurse along `Bind` chains — the
/// fuel keeps that recursion shallow enough for a 2 MiB worker stack with
/// a wide margin.
pub const MAX_PROGRAM_NODES: usize = 512;

/// Maximum byte length of a submitted model name.
pub const MAX_NAME_BYTES: usize = 64;

/// Handles `POST /v1/models`: admits or rejects a submitted model–guide
/// pair.
pub fn submit(app: &Arc<App>, req: &Request) -> Result<Response, ApiError> {
    if app.registry.user_capacity() == 0 {
        return Err(ApiError::new(
            403,
            "model.submissions_disabled",
            "this server runs with --user-models 0; submissions are disabled",
        ));
    }
    let doc = parse_body(req)?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad_schema("'name' must be a string"))?;
    if name.is_empty() || name.len() > MAX_NAME_BYTES {
        return Err(bad_schema(format!(
            "'name' must be 1..={MAX_NAME_BYTES} bytes"
        )));
    }
    let model_src = source_field(&doc, "model_src")?;
    let guide_src = source_field(&doc, "guide_src")?;

    // Parse both programs; the parser's own depth fence turns pathological
    // nesting into `parse.depth` rather than a stack overflow.
    let model_prog = parse_program(model_src).map_err(|e| parse_error("model", e))?;
    let guide_prog = parse_program(guide_src).map_err(|e| parse_error("guide", e))?;

    // Compile fuel: everything downstream is linear in command nodes.
    let nodes = model_prog.size() + guide_prog.size();
    if nodes > MAX_PROGRAM_NODES {
        return Err(ApiError::new(
            400,
            "limit.compile_fuel",
            format!(
                "programs total {nodes} command nodes, above the admission limit of {MAX_PROGRAM_NODES}"
            ),
        )
        .with("nodes", Json::Num(nodes as f64))
        .with("limit", Json::Num(MAX_PROGRAM_NODES as f64)));
    }

    let model_proc = proc_field(&doc, "model_proc", "model", &model_prog)?;
    let guide_proc = proc_field(&doc, "guide_proc", "guide", &guide_prog)?;

    // The id is a pure function of the sources: identical submissions are
    // idempotent, and the id can never alias a different program pair.
    let id = model_id(model_src, &model_proc, guide_src, &guide_proc);
    if let Some(existing) = app.registry.get(&id) {
        existing
            .submissions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let artifacts = app.store.count_for_model(&id);
        return Ok(submit_response(200, &existing, artifacts, false));
    }

    // Guide-type inference per program first, so a type error names which
    // source it came from; the session build below re-uses the same
    // algorithms and cannot fail earlier than these did.
    infer_program(&model_prog).map_err(|e| type_error(Some("model"), e.into()))?;
    infer_program(&guide_prog).map_err(|e| type_error(Some("guide"), e.into()))?;

    // The admission gate: model–guide compatibility (Theorem 5.2) plus
    // compilation to shared program tables.
    let session = {
        let _span = ppl_obs::Span::enter(ppl_obs::Phase::Compile);
        Session::from_programs(model_prog, &model_proc, guide_prog, &guide_proc)
            .map_err(|e| type_error(None, e))?
    };

    let entry = ModelEntry {
        id: id.clone(),
        name: name.to_string(),
        description: format!("user model (proc {model_proc} / guide {guide_proc})"),
        latent_protocol: session.latent_protocol(),
        observation_protocol: session.observation_protocol(),
        default_observation_count: 0,
        default_method: "IS",
        guide_param_defaults: Vec::new(),
        session: Arc::new(session),
        origin: ModelOrigin::User,
        max_request_executions: MAX_USER_MODEL_EXECUTIONS,
        submissions: AtomicU64::new(1),
        queries: AtomicU64::new(0),
        fits: AtomicU64::new(0),
        executions: AtomicU64::new(0),
        execution_nanos: AtomicU64::new(0),
    };
    match app.registry.insert_user(entry) {
        // A re-admitted model (same content hash) may already own
        // persisted artifacts from an earlier residency.
        Some((entry, created)) => Ok(submit_response(
            if created { 201 } else { 200 },
            &entry,
            app.store.count_for_model(&entry.id),
            created,
        )),
        None => Err(ApiError::new(
            403,
            "model.submissions_disabled",
            "this server runs with --user-models 0; submissions are disabled",
        )),
    }
}

/// Handles `GET /v1/models/{id}`.
pub fn get_model(app: &Arc<App>, id: &str) -> Result<Response, ApiError> {
    let entry = app.registry.get(id).ok_or_else(|| unknown_model(id))?;
    let body = model_json(&entry, app.store.count_for_model(&entry.id));
    Ok(Response::json(200, body.write().expect("finite")))
}

/// Handles `DELETE /v1/models/{id}`: removes a user model.  Builtins are
/// part of the served catalogue and cannot be deleted.
pub fn delete_model(app: &Arc<App>, id: &str) -> Result<Response, ApiError> {
    match app.registry.get(id) {
        None => Err(unknown_model(id)),
        Some(entry) if entry.origin == ModelOrigin::Builtin => Err(ApiError::new(
            403,
            "model.builtin",
            format!("model '{id}' is a builtin benchmark and cannot be deleted"),
        )),
        Some(_) => {
            app.registry.remove_user(id);
            let body = Json::Obj(vec![("deleted".into(), Json::str(id))]);
            Ok(Response::json(200, body.write().expect("finite")))
        }
    }
}

fn unknown_model(id: &str) -> ApiError {
    ApiError::new(
        404,
        "model.unknown",
        format!("no model '{id}' in the registry"),
    )
}

fn source_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    let src = doc
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad_schema(format!("'{key}' must be a string of source text")))?;
    if src.len() > MAX_SOURCE_BYTES {
        return Err(ApiError::new(
            400,
            "limit.source_bytes",
            format!(
                "'{key}' is {} bytes, above the admission limit of {MAX_SOURCE_BYTES}",
                src.len()
            ),
        )
        .with("source", Json::str(key.trim_end_matches("_src")))
        .with("bytes", Json::Num(src.len() as f64))
        .with("limit", Json::Num(MAX_SOURCE_BYTES as f64)));
    }
    Ok(src)
}

fn proc_field(doc: &Json, key: &str, which: &str, program: &Program) -> Result<String, ApiError> {
    let name = match doc.get(key) {
        Some(json) => json
            .as_str()
            .ok_or_else(|| bad_schema(format!("'{key}' must be a string")))?
            .to_string(),
        // Default to the first declared procedure.
        None => program
            .procs
            .first()
            .map(|p| p.name.as_str().to_string())
            .ok_or_else(|| bad_schema(format!("{which}_src declares no procedures")))?,
    };
    if program.proc_named(&name).is_none() {
        return Err(bad_schema(format!(
            "{which}_src declares no procedure named '{name}'"
        )));
    }
    Ok(name)
}

/// Maps a [`ParseError`] to the structured 400 body, naming the offending
/// source and position.
fn parse_error(source: &str, e: ParseError) -> ApiError {
    ApiError::new(400, e.code(), e.to_string())
        .with("source", Json::str(source))
        .with("line", Json::Num(e.line as f64))
        .with("col", Json::Num(e.col as f64))
}

/// Maps a pipeline [`SessionError`] to the structured 400 body.  `source`
/// names the program the error is attributed to, when known (model–guide
/// compatibility errors span both).
fn type_error(source: Option<&str>, e: SessionError) -> ApiError {
    let mut api = ApiError::new(400, e.code(), e.to_string());
    if let Some(source) = source {
        api = api.with("source", Json::str(source));
    }
    if let Some((line, col)) = e.position() {
        api = api
            .with("line", Json::Num(line as f64))
            .with("col", Json::Num(col as f64));
    }
    if let SessionError::Incompatible {
        model_latent,
        guide_latent,
    } = &e
    {
        api = api
            .with("model_latent", Json::str(model_latent.clone()))
            .with("guide_latent", Json::str(guide_latent.clone()));
    }
    api
}

fn submit_response(status: u16, entry: &ModelEntry, artifacts: u64, created: bool) -> Response {
    let mut fields = match model_json(entry, artifacts) {
        Json::Obj(fields) => fields,
        _ => unreachable!("model_json returns an object"),
    };
    fields.push(("created".into(), Json::Bool(created)));
    Response::json(status, Json::Obj(fields).write().expect("finite"))
}

/// The deterministic content-hash model id: `m-` plus the first 16 hex
/// digits of the SHA-256 of the length-prefixed source tuple.  Length
/// prefixes keep the encoding injective (no concatenation ambiguity
/// between the four fields).
pub fn model_id(model_src: &str, model_proc: &str, guide_src: &str, guide_proc: &str) -> String {
    let mut hasher = Sha256::new();
    for part in [model_src, model_proc, guide_src, guide_proc] {
        hasher.update(&(part.len() as u64).to_le_bytes());
        hasher.update(part.as_bytes());
    }
    let digest = hasher.finalize();
    let mut id = String::with_capacity(18);
    id.push_str("m-");
    for byte in &digest[..8] {
        use std::fmt::Write;
        let _ = write!(id, "{byte:02x}");
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_ids_are_deterministic_and_injective_on_field_boundaries() {
        let a = model_id("proc A", "A", "proc G", "G");
        assert_eq!(a, model_id("proc A", "A", "proc G", "G"));
        assert!(a.starts_with("m-") && a.len() == 18, "{a}");
        // Shifting bytes across the field boundary changes the id.
        assert_ne!(a, model_id("proc AA", "", "proc G", "G"));
        assert_ne!(a, model_id("proc A", "A", "proc GG", ""));
    }
}
