//! Process-wide runtime instrumentation counters.
//!
//! Mirrors the discipline of `ppl_inference::counters`: plain relaxed
//! atomics, incremented at *scheduling* granularity — once per block or
//! per run, never per particle or per op.  The steady-state particle
//! loop is atomic-free (see the allocation-budget test); call sites
//! accumulate into a local `u64` and flush here at block boundaries, so
//! enabling these counters costs nothing measurable.
//!
//! The counters answer the observability questions the serving tier
//! cares about per request (reported as deltas around a run):
//!
//! * how many cooperative cancellation polls ([`CancelToken::check`])
//!   did the engine perform — a proxy for how responsive the run was to
//!   deadlines;
//! * how many times did the vectorised block executor split lanes at a
//!   branch and re-converge afterwards — a proxy for control-flow
//!   divergence in the model.
//!
//! [`CancelToken::check`]: crate::cancel::CancelToken::check

use std::sync::atomic::{AtomicU64, Ordering};

static CANCEL_CHECKS: AtomicU64 = AtomicU64::new(0);
static LANE_SPLITS: AtomicU64 = AtomicU64::new(0);
static LANE_RECONVERGES: AtomicU64 = AtomicU64::new(0);

/// Record `n` cooperative-cancellation polls.  Call once per block (or
/// per proposal batch) with a locally accumulated count — never from
/// inside the per-op loop.
pub fn record_cancel_checks(n: u64) {
    if n > 0 {
        CANCEL_CHECKS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Total cooperative-cancellation polls since process start.
pub fn cancel_checks() -> u64 {
    CANCEL_CHECKS.load(Ordering::Relaxed)
}

/// Record one lane split: a vectorised block hit a branch whose
/// predicate diverged, partitioning live lanes into both arms.
pub fn record_lane_split() {
    LANE_SPLITS.fetch_add(1, Ordering::Relaxed);
}

/// Total lane splits since process start.
pub fn lane_splits() -> u64 {
    LANE_SPLITS.load(Ordering::Relaxed)
}

/// Record one lane re-convergence: both arms of a diverged branch
/// completed and the lanes rejoined lockstep execution.
pub fn record_lane_reconverge() {
    LANE_RECONVERGES.fetch_add(1, Ordering::Relaxed);
}

/// Total lane re-convergences since process start.
pub fn lane_reconverges() -> u64 {
    LANE_RECONVERGES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_independent() {
        let c0 = cancel_checks();
        let s0 = lane_splits();
        let r0 = lane_reconverges();
        record_cancel_checks(0);
        assert_eq!(cancel_checks(), c0, "zero-count flush is free");
        record_cancel_checks(17);
        record_lane_split();
        record_lane_split();
        record_lane_reconverge();
        assert!(cancel_checks() >= c0 + 17);
        assert!(lane_splits() >= s0 + 2);
        assert!(lane_reconverges() > r0);
    }
}
