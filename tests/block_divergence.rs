//! Control-flow divergence regressions for the vectorised block executor.
//!
//! The block executor steps many particles in lockstep over the compiled
//! program; when lanes disagree on a branch direction the block splits
//! per-lane and re-converges afterwards.  These tests pin the property
//! that divergence is *invisible* in results: importance sampling through
//! the full `Session` → `Query` pipeline is bit-identical to the scalar
//! path (`block = 1`) at every block size and thread count, on models
//! built to maximise divergence:
//!
//! 1. a four-arm offer chain (two nested external choices on the latent
//!    channel) where, at small block sizes, every lane can take a
//!    different arm, and
//! 2. a model whose branch — and hence which latent sites exist — is
//!    selected by the *observation*, run under both observation regimes.
//!
//! The determinism goldens (`tests/determinism_goldens.rs`) separately
//! pin that the default block size reproduces the scalar fingerprints
//! recorded before vectorisation landed.

use guide_ppl::{Method, Posterior, Session};
use ppl_dist::Sample;

const BLOCK_SIZES: [usize; 4] = [1, 7, 64, 256];
const THREADS: [usize; 2] = [1, 4];
const PARTICLES: usize = 500;

/// Runs importance sampling at every block size × thread count and asserts
/// the particles, weights, and evidence are bit-identical to the scalar
/// single-thread reference.
fn assert_block_invariant(session: &Session, observations: Vec<Sample>, seed: u64) {
    let run = |block: usize, threads: usize| {
        session
            .query()
            .observe(observations.clone())
            .seed(seed)
            .threads(threads)
            .block(block)
            .run(&Method::Importance {
                particles: PARTICLES,
            })
            .expect("importance sampling runs")
            .as_importance()
            .cloned()
            .expect("importance posterior")
    };
    let reference = run(1, 1);
    assert_eq!(reference.particles.len(), PARTICLES);
    for block in BLOCK_SIZES {
        for threads in THREADS {
            let result = run(block, threads);
            assert_eq!(
                result.log_evidence.to_bits(),
                reference.log_evidence.to_bits(),
                "log_evidence drifted at block {block}, {threads} threads"
            );
            assert_eq!(
                result.ess.to_bits(),
                reference.ess.to_bits(),
                "ess drifted at block {block}, {threads} threads"
            );
            for (i, (r, s)) in result
                .particles
                .iter()
                .zip(&reference.particles)
                .enumerate()
            {
                assert_eq!(
                    r.log_weight.to_bits(),
                    s.log_weight.to_bits(),
                    "particle {i} log-weight drifted at block {block}, {threads} threads"
                );
                assert_eq!(
                    r.latent, s.latent,
                    "particle {i} trace drifted at block {block}, {threads} threads"
                );
            }
        }
    }
}

/// A two-level offer chain: the model announces an outer and an inner
/// branch direction on the latent channel, yielding four arms with
/// different proposal distributions and different observation likelihoods.
/// Lane-dependent draws mean a block of four lanes can take four different
/// arms.
const OFFER_MODEL: &str = r#"
    proc Model() : real consume latent provide obs {
      let a <- sample recv latent (Unif);
      if send latent (a < 0.5) {
        let b <- sample recv latent (Unif);
        if send latent (b < 0.5) {
          let _ <- sample send obs (Normal(0.0, 1.0));
          return a
        } else {
          let _ <- sample send obs (Normal(1.0, 1.0));
          return b
        }
      } else {
        let b <- sample recv latent (Beta(2.0, 2.0));
        if send latent (b < a) {
          let _ <- sample send obs (Normal(2.0, 1.0));
          return a + b
        } else {
          let _ <- sample send obs (Normal(3.0, 1.0));
          return a
        }
      }
    }
"#;

const OFFER_GUIDE: &str = r#"
    proc Guide() provide latent {
      let a <- sample send latent (Unif);
      if recv latent {
        let b <- sample send latent (Unif);
        if recv latent {
          return ()
        } else {
          return ()
        }
      } else {
        let b <- sample send latent (Beta(3.0, 1.0));
        if recv latent {
          return ()
        } else {
          return ()
        }
      }
    }
"#;

#[test]
fn four_arm_offer_chain_is_block_invariant() {
    let session = Session::from_sources(OFFER_MODEL, "Model", OFFER_GUIDE, "Guide")
        .expect("offer chain is well-typed and compatible");
    assert_block_invariant(&session, vec![Sample::Real(1.2)], 0xD1_7E55);
}

#[test]
fn offer_chain_visits_every_arm() {
    // The divergence scenario is only meaningful if all four arms are
    // actually exercised; the observed likelihood means tags 0..4 all
    // carry weight.  Count arms by the recorded trace shape.
    let session = Session::from_sources(OFFER_MODEL, "Model", OFFER_GUIDE, "Guide")
        .expect("offer chain is well-typed and compatible");
    let result = session
        .query()
        .observe(vec![Sample::Real(1.2)])
        .seed(0xD1_7E55)
        .run(&Method::Importance {
            particles: PARTICLES,
        })
        .unwrap();
    let mut arms = std::collections::BTreeSet::new();
    result.for_each_draw(&mut |draw| {
        // Draw layout: [a, b]; recover the arm from the values.
        let a = draw.samples[0].as_f64();
        let b = draw.samples[1].as_f64();
        arms.insert(((a < 0.5) as u8) << 1 | ((if a < 0.5 { b < 0.5 } else { b < a }) as u8));
    });
    assert_eq!(arms.len(), 4, "all four offer arms must be populated");
}

/// The branch the model takes — and therefore which latent sites exist —
/// is decided by the first observation: a negative reading selects the
/// one-latent arm, a non-negative one the two-latent arm.
const OBS_BRANCH_MODEL: &str = r#"
    proc Model() : real consume latent provide obs {
      let z <- sample send obs (Normal(0.0, 2.0));
      if send latent (z < 0.0) {
        let x <- sample recv latent (Normal(0.0, 1.0));
        let _ <- sample send obs (Normal(x, 1.0));
        return x
      } else {
        let x <- sample recv latent (Normal(0.0, 1.0));
        let y <- sample recv latent (Gamma(2.0, 2.0));
        let _ <- sample send obs (Normal(x + y, 1.0));
        return x
      }
    }
"#;

const OBS_BRANCH_GUIDE: &str = r#"
    proc Guide() provide latent {
      if recv latent {
        let x <- sample send latent (Normal(0.0, 1.5));
        return ()
      } else {
        let x <- sample send latent (Normal(0.5, 1.0));
        let y <- sample send latent (Gamma(2.0, 1.0));
        return ()
      }
    }
"#;

#[test]
fn observation_selected_branch_is_block_invariant() {
    let session = Session::from_sources(OBS_BRANCH_MODEL, "Model", OBS_BRANCH_GUIDE, "Guide")
        .expect("observation-branch pair is well-typed and compatible");
    // Negative regime: one latent site per particle.
    assert_block_invariant(
        &session,
        vec![Sample::Real(-1.5), Sample::Real(0.3)],
        0x0B5_001,
    );
    // Non-negative regime: two latent sites per particle — the compiled
    // block plan must be re-derived for the new observation set, not
    // reused from the negative regime.
    assert_block_invariant(
        &session,
        vec![Sample::Real(1.5), Sample::Real(2.1)],
        0x0B5_002,
    );
}

#[test]
fn observation_regimes_produce_different_trace_shapes() {
    // Sanity for the test above: the two observation regimes really do
    // route through different arms (one vs two latent draws).
    let session = Session::from_sources(OBS_BRANCH_MODEL, "Model", OBS_BRANCH_GUIDE, "Guide")
        .expect("observation-branch pair is well-typed and compatible");
    let draws_of = |z: f64, second: f64| {
        let result = session
            .query()
            .observe(vec![Sample::Real(z), Sample::Real(second)])
            .seed(7)
            .run(&Method::Importance { particles: 50 })
            .unwrap();
        let mut widths = std::collections::BTreeSet::new();
        result.for_each_draw(&mut |draw| {
            widths.insert(draw.samples.len());
        });
        widths
    };
    assert_eq!(draws_of(-1.5, 0.3).into_iter().collect::<Vec<_>>(), [1]);
    assert_eq!(draws_of(1.5, 2.1).into_iter().collect::<Vec<_>>(), [2]);
}
