//! The joint model–guide executor.
//!
//! Inference algorithms (importance sampling, MCMC, variational inference)
//! all perform *joint executions* of the model and guide coroutines: the
//! guide provides the `latent` channel that the model consumes, while the
//! model's `obs` channel is conditioned on a fixed sequence of observations.
//! This module is the driver that schedules the two coroutines, performs
//! the rendezvous at every channel operation, draws (or replays) latent
//! values, and accumulates both log-weights.

use crate::coroutine::{Coroutine, CoroutineError, Resume, Step, Suspend};
use crate::program::CompiledProgram;
use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;
use ppl_semantics::trace::{Message, Trace};
use ppl_semantics::value::Value;
use ppl_syntax::ast::{ChannelName, Ident, Program};
use std::fmt;
use std::sync::Arc;

/// Errors raised by the joint executor.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A coroutine failed.
    Coroutine(CoroutineError),
    /// The two coroutines reached channel operations that do not match
    /// (this cannot happen for model–guide pairs accepted by the guide-type
    /// checker; it is detected and reported for unchecked pairs).
    ProtocolViolation(String),
    /// The model requested more observations than were supplied, or not all
    /// observations were consumed.
    ObservationMismatch(String),
    /// A replayed latent trace was too short for the execution.
    ReplayExhausted,
    /// The execution's deadline (see [`crate::cancel::CancelToken`]) passed
    /// before it finished; partial work was discarded.
    DeadlineExceeded,
    /// The execution's cancel token was raised (e.g. a server drain) before
    /// it finished; partial work was discarded.
    Cancelled,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Coroutine(e) => write!(f, "{e}"),
            RuntimeError::ProtocolViolation(m) => write!(f, "protocol violation: {m}"),
            RuntimeError::ObservationMismatch(m) => write!(f, "observation mismatch: {m}"),
            RuntimeError::ReplayExhausted => write!(f, "replayed latent trace exhausted"),
            RuntimeError::DeadlineExceeded => {
                write!(f, "the execution deadline passed before inference finished")
            }
            RuntimeError::Cancelled => write!(f, "the execution was cancelled"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<CoroutineError> for RuntimeError {
    fn from(e: CoroutineError) -> Self {
        RuntimeError::Coroutine(e)
    }
}

/// Where latent sample values come from during a joint execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatentSource<'t> {
    /// Draw each latent value from the guide's proposal distribution at that
    /// site (the normal generative mode used by IS and VI).
    FromGuide,
    /// Replay the provider samples of an existing latent trace in order
    /// (used by MCMC to re-score a proposed trace).
    Replay(&'t Trace),
}

/// The outcome of one joint model–guide execution.
#[derive(Debug, Clone, PartialEq)]
pub struct JointResult {
    /// The guidance trace recorded on the latent channel (including branch
    /// selections and fold markers).
    pub latent: Trace,
    /// The guide's log-density `log w_g` of the latent trace.
    pub log_guide: f64,
    /// The model's log-density `log w_m` (prior × likelihood of the
    /// conditioned observations).
    pub log_model: f64,
    /// The model's return value.
    pub model_value: Value,
    /// The guide's return value.
    pub guide_value: Value,
    /// Number of observation values consumed by the model.
    pub observations_used: usize,
}

impl JointResult {
    /// The latent values (provider samples) in sampling order.
    pub fn latent_samples(&self) -> Vec<Sample> {
        self.latent.provider_samples()
    }

    /// The importance log-weight `log (w_m / w_g)`.
    pub fn log_importance_weight(&self) -> f64 {
        if self.log_model == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        self.log_model - self.log_guide
    }
}

/// Configuration of a joint execution: which procedures to run and how the
/// channels are named.
#[derive(Debug, Clone)]
pub struct JointSpec {
    /// Name of the model procedure.
    pub model_proc: Ident,
    /// Arguments of the model procedure.
    pub model_args: Vec<Value>,
    /// Name of the guide procedure.
    pub guide_proc: Ident,
    /// Arguments of the guide procedure (e.g. variational parameters).
    pub guide_args: Vec<Value>,
    /// Name of the latent channel (consumed by the model, provided by the
    /// guide).  Defaults to `latent`.
    pub latent_chan: ChannelName,
    /// Name of the observation channel (provided by the model).  Defaults to
    /// `obs`.
    pub obs_chan: ChannelName,
}

impl JointSpec {
    /// Builds a spec with the conventional channel names.
    pub fn new(model_proc: impl Into<Ident>, guide_proc: impl Into<Ident>) -> Self {
        JointSpec {
            model_proc: model_proc.into(),
            model_args: Vec::new(),
            guide_proc: guide_proc.into(),
            guide_args: Vec::new(),
            latent_chan: "latent".into(),
            obs_chan: "obs".into(),
        }
    }

    /// Sets the model arguments.
    pub fn with_model_args(mut self, args: Vec<Value>) -> Self {
        self.model_args = args;
        self
    }

    /// Sets the guide arguments.
    pub fn with_guide_args(mut self, args: Vec<Value>) -> Self {
        self.guide_args = args;
        self
    }
}

/// Reusable per-worker scratch state for joint executions.
///
/// A joint execution needs two coroutines (frame stacks, binding stacks,
/// argument buffers) and a trace buffer.  Allocating those per particle is
/// what kept the steady-state particle loop off the allocation-free path,
/// so the executor accepts a scratch pool: coroutines are parked here
/// between runs and re-armed in place, and the pooled trace buffer is
/// refilled rather than regrown.  Each engine
/// worker owns one scratch and reuses it across every particle of its
/// substream.
///
/// After a run, the recorded trace travels out inside the
/// [`JointResult`]; callers that only needed it transiently (MCMC
/// re-scoring, VI gradient replays, throughput loops) hand the buffer back
/// with [`JointScratch::recycle`], making the whole cycle allocation-free.
///
/// The scratch also owns the working memory of the vectorised block
/// executor ([`JointExecutor::run_block_with_scratch`]): its
/// structure-of-arrays lane buffers, the per-worker compiled block plan,
/// and a pool of trace buffers so a block of `N` particles can record `N`
/// traces concurrently without allocating in the steady state.
#[derive(Debug, Default)]
pub struct JointScratch {
    pub(crate) model: Option<Coroutine>,
    pub(crate) guide: Option<Coroutine>,
    trace: Trace,
    /// Recycled trace buffers; block execution checks out up to one per
    /// lane and refills the pool from the caller's [`JointScratch::recycle`]
    /// calls.
    pub(crate) trace_pool: Vec<Trace>,
    /// Block-execution working memory (lane buffers, plan cache).
    pub(crate) block: crate::block::BlockScratch,
}

/// Upper bound on pooled trace buffers (enough for the largest block size
/// with headroom; beyond it, donors fold into the single scalar slot).
const TRACE_POOL_CAP: usize = 1024;

impl JointScratch {
    /// A fresh, empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands a no-longer-needed trace's buffer back for the next run (see
    /// [`Trace::recycle`]).
    pub fn recycle(&mut self, mut trace: Trace) {
        if self.trace_pool.len() < TRACE_POOL_CAP {
            trace.clear();
            self.trace_pool.push(trace);
        } else {
            self.trace.recycle(trace);
        }
    }

    /// Checks a trace buffer out of the pool (falling back to the scalar
    /// slot, then to a fresh buffer).
    pub(crate) fn take_trace(&mut self) -> Trace {
        self.trace_pool
            .pop()
            .unwrap_or_else(|| std::mem::take(&mut self.trace))
    }

    /// Takes a coroutine for `program` out of the pool (re-armed by the
    /// caller), or `None` when the slot is empty or holds a coroutine for a
    /// different program.
    fn take_coroutine(
        slot: &mut Option<Coroutine>,
        program: &Arc<CompiledProgram>,
    ) -> Option<Coroutine> {
        slot.take().filter(|co| Arc::ptr_eq(co.program(), program))
    }
}

/// The joint executor: shares the two compiled programs and the
/// conditioning data.
///
/// All state is behind [`Arc`]s, so the executor is `Send + Sync` and
/// cloning it is three reference-count bumps — the parallel particle driver
/// hands one executor to every worker thread, and each joint execution
/// spawns its coroutines directly over the shared [`CompiledProgram`]s with
/// zero per-particle AST or environment copying.
#[derive(Debug, Clone)]
pub struct JointExecutor {
    pub(crate) model_program: Arc<CompiledProgram>,
    pub(crate) guide_program: Arc<CompiledProgram>,
    pub(crate) observations: Arc<[Sample]>,
    pub(crate) cancel: crate::cancel::CancelToken,
}

impl JointExecutor {
    /// Creates an executor, compiling both programs into shared form.
    /// `observations` is the sequence of values for the model's observation
    /// channel, in program order.
    pub fn new(
        model_program: &Program,
        guide_program: &Program,
        observations: Vec<Sample>,
    ) -> Self {
        JointExecutor::from_compiled(
            CompiledProgram::compile_shared(model_program),
            CompiledProgram::compile_shared(guide_program),
            observations,
        )
    }

    /// Creates an executor over already-compiled programs (shares them
    /// instead of recompiling — e.g. across many observation sets).
    pub fn from_compiled(
        model_program: Arc<CompiledProgram>,
        guide_program: Arc<CompiledProgram>,
        observations: Vec<Sample>,
    ) -> Self {
        JointExecutor {
            model_program,
            guide_program,
            observations: observations.into(),
            cancel: crate::cancel::CancelToken::none(),
        }
    }

    /// Installs a cancellation/deadline token; every subsequent execution
    /// through this executor (scalar or block) polls it at its work
    /// boundaries.  Clones made *after* this call share the token.
    pub fn set_cancel_token(&mut self, token: crate::cancel::CancelToken) {
        self.cancel = token;
    }

    /// The executor's cancellation token (a never-cancelling
    /// [`CancelToken::none`](crate::cancel::CancelToken::none) unless
    /// [`set_cancel_token`](JointExecutor::set_cancel_token) installed one).
    pub fn cancel_token(&self) -> &crate::cancel::CancelToken {
        &self.cancel
    }

    /// The compiled model program.
    pub fn model_program(&self) -> &Arc<CompiledProgram> {
        &self.model_program
    }

    /// The compiled guide program.
    pub fn guide_program(&self) -> &Arc<CompiledProgram> {
        &self.guide_program
    }

    /// The conditioning observations.
    pub fn observations(&self) -> &[Sample] {
        &self.observations
    }

    /// Runs one joint execution with one-shot scratch state.
    ///
    /// Equivalent to [`JointExecutor::run_with_scratch`] over a fresh
    /// [`JointScratch`]; loops that run many executions should hold a
    /// scratch of their own so coroutine stacks and the trace buffer are
    /// reused instead of reallocated per run.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on coroutine failures, protocol
    /// violations between incompatible model–guide pairs, or observation /
    /// replay exhaustion.
    pub fn run(
        &self,
        spec: &JointSpec,
        source: LatentSource<'_>,
        rng: &mut Pcg32,
    ) -> Result<JointResult, RuntimeError> {
        self.run_with_scratch(spec, source, rng, &mut JointScratch::new())
    }

    /// Runs one joint execution, drawing all working memory from (and
    /// returning it to) `scratch`.
    ///
    /// In the steady state — after the scratch's buffers have grown to the
    /// program's working size, and provided the caller recycles the
    /// returned trace via [`JointScratch::recycle`] — a joint execution
    /// performs **zero heap allocations**.
    ///
    /// # Errors
    ///
    /// Same contract as [`JointExecutor::run`].
    pub fn run_with_scratch(
        &self,
        spec: &JointSpec,
        source: LatentSource<'_>,
        rng: &mut Pcg32,
        scratch: &mut JointScratch,
    ) -> Result<JointResult, RuntimeError> {
        self.cancel.check()?;
        let mut model = match JointScratch::take_coroutine(&mut scratch.model, &self.model_program)
        {
            Some(mut co) => {
                co.respawn(&spec.model_proc, &spec.model_args)?;
                co
            }
            None => Coroutine::spawn(
                &self.model_program,
                &spec.model_proc,
                spec.model_args.clone(),
            )?,
        };
        let mut guide = match JointScratch::take_coroutine(&mut scratch.guide, &self.guide_program)
        {
            Some(mut co) => {
                co.respawn(&spec.guide_proc, &spec.guide_args)?;
                co
            }
            None => Coroutine::spawn(
                &self.guide_program,
                &spec.guide_proc,
                spec.guide_args.clone(),
            )?,
        };
        let mut latent = scratch.take_trace();
        latent.clear();
        let result = self.drive_joint(spec, source, rng, &mut model, &mut guide, &mut latent);
        // Park the coroutines (and, on failure, the trace buffer) for the
        // next run regardless of the outcome.
        scratch.model = Some(model);
        scratch.guide = Some(guide);
        match result {
            Ok((model_value, log_model, guide_value, log_guide, obs_used)) => Ok(JointResult {
                latent,
                log_guide,
                log_model,
                model_value,
                guide_value,
                observations_used: obs_used,
            }),
            Err(e) => {
                scratch.recycle(latent);
                Err(e)
            }
        }
    }

    /// The rendezvous loop of one joint execution; returns
    /// `(model_value, log_model, guide_value, log_guide, observations_used)`.
    #[allow(clippy::type_complexity)]
    fn drive_joint(
        &self,
        spec: &JointSpec,
        source: LatentSource<'_>,
        rng: &mut Pcg32,
        model: &mut Coroutine,
        guide: &mut Coroutine,
        latent: &mut Trace,
    ) -> Result<(Value, f64, Value, f64, usize), RuntimeError> {
        // Replay borrows the trace and walks its sample values (`valP` and
        // `valC` — whichever side sent each one) in place, so re-scoring a
        // proposal (the MCMC inner loop) allocates nothing.
        let mut replay_values = match source {
            LatentSource::FromGuide => None,
            LatentSource::Replay(trace) => Some(trace.sample_value_iter()),
        };
        let mut next_latent =
            |dist: &ppl_dist::Distribution, rng: &mut Pcg32| -> Result<Sample, RuntimeError> {
                match replay_values.as_mut() {
                    Some(iter) => iter.next().ok_or(RuntimeError::ReplayExhausted),
                    None => Ok(dist.draw(rng)),
                }
            };

        let mut obs_used = 0usize;
        let mut model_step = model.start()?;
        let mut guide_step = guide.start()?;

        loop {
            // 1. Finished?
            if let (Step::Done { .. }, Step::Done { .. }) = (&model_step, &guide_step) {
                break;
            }

            // 2. Model-side observation operations proceed independently of
            //    the guide.
            if let Step::Suspended(susp) = &model_step {
                if susp.channel() == &spec.obs_chan {
                    match susp.clone() {
                        Suspend::SampleSend { .. } => {
                            let value =
                                self.observations.get(obs_used).copied().ok_or_else(|| {
                                    RuntimeError::ObservationMismatch(format!(
                                    "the model requested observation #{} but only {} were supplied",
                                    obs_used + 1,
                                    self.observations.len()
                                ))
                                })?;
                            obs_used += 1;
                            model_step = model.resume(Resume::Sample(value))?;
                        }
                        Suspend::CallMarker { .. } => {
                            model_step = model.resume(Resume::Ack)?;
                        }
                        Suspend::BranchSend { .. } => {
                            // A branch communicated on the observation
                            // channel is driven by the model alone.
                            model_step = model.resume(Resume::Ack)?;
                        }
                        other => {
                            return Err(RuntimeError::ProtocolViolation(format!(
                                "unsupported model operation on the observation channel: {other:?}"
                            )))
                        }
                    }
                    continue;
                }
            }

            // 3. Latent-channel rendezvous: both coroutines must be
            //    suspended on matching operations.
            let (model_susp, guide_susp) = match (&model_step, &guide_step) {
                (Step::Suspended(m), Step::Suspended(g)) => (m.clone(), g.clone()),
                (Step::Done { .. }, Step::Suspended(g)) => {
                    return Err(RuntimeError::ProtocolViolation(format!(
                        "the model finished but the guide is waiting at {g:?}"
                    )))
                }
                (Step::Suspended(m), Step::Done { .. }) => {
                    return Err(RuntimeError::ProtocolViolation(format!(
                        "the guide finished but the model is waiting at {m:?}"
                    )))
                }
                _ => unreachable!("both-done handled above"),
            };

            match (model_susp, guide_susp) {
                // Guide sends a latent sample; model receives it.
                (Suspend::SampleRecv { chan: mc, .. }, Suspend::SampleSend { chan: gc, dist })
                    if mc == spec.latent_chan && gc == spec.latent_chan =>
                {
                    let value = next_latent(&dist, rng)?;
                    guide_step = guide.resume(Resume::Sample(value))?;
                    model_step = model.resume(Resume::Sample(value))?;
                    latent.push(Message::ValP(value));
                }
                // Model sends a latent sample; guide receives it (dual
                // direction, `τ ⊃ A`).
                (Suspend::SampleSend { chan: mc, dist }, Suspend::SampleRecv { chan: gc, .. })
                    if mc == spec.latent_chan && gc == spec.latent_chan =>
                {
                    let value = next_latent(&dist, rng)?;
                    model_step = model.resume(Resume::Sample(value))?;
                    guide_step = guide.resume(Resume::Sample(value))?;
                    latent.push(Message::ValC(value));
                }
                // Model sends the branch selection; guide receives it.
                (
                    Suspend::BranchSend {
                        chan: mc,
                        selection,
                    },
                    Suspend::BranchRecv { chan: gc },
                ) if mc == spec.latent_chan && gc == spec.latent_chan => {
                    guide_step = guide.resume(Resume::Branch(selection))?;
                    model_step = model.resume(Resume::Ack)?;
                    latent.push(Message::DirC(selection));
                }
                // Guide sends the branch selection; model receives it.
                (
                    Suspend::BranchRecv { chan: mc },
                    Suspend::BranchSend {
                        chan: gc,
                        selection,
                    },
                ) if mc == spec.latent_chan && gc == spec.latent_chan => {
                    model_step = model.resume(Resume::Branch(selection))?;
                    guide_step = guide.resume(Resume::Ack)?;
                    latent.push(Message::DirP(selection));
                }
                // Both coroutines fold (enter a procedure call) on the
                // latent channel.
                (Suspend::CallMarker { chan: mc }, Suspend::CallMarker { chan: gc })
                    if mc == spec.latent_chan && gc == spec.latent_chan =>
                {
                    model_step = model.resume(Resume::Ack)?;
                    guide_step = guide.resume(Resume::Ack)?;
                    latent.push(Message::Fold);
                }
                // The guide folds on the latent channel while the model is
                // not yet at a fold: tolerate guide-only helper calls by
                // letting the guide proceed alone (the fold is not recorded,
                // matching a guide whose call structure refines the
                // protocol).  The symmetric case for the model is handled
                // identically.
                (m, Suspend::CallMarker { chan: gc }) if gc == spec.latent_chan => {
                    guide_step = guide.resume(Resume::Ack)?;
                    // keep the model suspended where it was
                    let _ = m;
                }
                (Suspend::CallMarker { chan: mc }, _g) if mc == spec.latent_chan => {
                    model_step = model.resume(Resume::Ack)?;
                }
                (m, g) => {
                    return Err(RuntimeError::ProtocolViolation(format!(
                        "mismatched channel operations: model at {m:?}, guide at {g:?}"
                    )));
                }
            }
        }

        let (model_value, log_model) = match model_step {
            Step::Done { value, log_weight } => (value, log_weight),
            _ => unreachable!(),
        };
        let (guide_value, log_guide) = match guide_step {
            Step::Done { value, log_weight } => (value, log_weight),
            _ => unreachable!(),
        };
        if obs_used != self.observations.len() {
            return Err(RuntimeError::ObservationMismatch(format!(
                "the model consumed {obs_used} observation(s) but {} were supplied",
                self.observations.len()
            )));
        }
        Ok((model_value, log_model, guide_value, log_guide, obs_used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_dist::Distribution;
    use ppl_syntax::parse_program;

    fn fig5() -> (Program, Program) {
        let model = parse_program(
            r#"
            proc Model() : real consume latent provide obs {
              let v <- sample recv latent (Gamma(2.0, 1.0));
              if send latent (v < 2.0) {
                let _ <- sample send obs (Normal(-1.0, 1.0));
                return v
              } else {
                let m <- sample recv latent (Beta(3.0, 1.0));
                let _ <- sample send obs (Normal(m, 1.0));
                return v
              }
            }
        "#,
        )
        .unwrap();
        let guide = parse_program(
            r#"
            proc Guide1() provide latent {
              let v <- sample send latent (Gamma(1.0, 1.0));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Unif);
                return ()
              }
            }
        "#,
        )
        .unwrap();
        (model, guide)
    }

    #[test]
    fn joint_execution_produces_consistent_weights() {
        let (model, guide) = fig5();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.8)]);
        let spec = JointSpec::new("Model", "Guide1");
        let mut rng = Pcg32::seed_from_u64(11);
        for _ in 0..200 {
            let r = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
            let samples = r.latent_samples();
            let x = samples[0].as_f64();
            assert!(x > 0.0);
            // Recompute both log-weights by hand and compare.
            let mut expect_g = Distribution::gamma(1.0, 1.0).unwrap().log_density_f64(x);
            let mut expect_m = Distribution::gamma(2.0, 1.0).unwrap().log_density_f64(x);
            if x < 2.0 {
                expect_m += Distribution::normal(-1.0, 1.0)
                    .unwrap()
                    .log_density_f64(0.8);
                assert_eq!(samples.len(), 1);
            } else {
                let y = samples[1].as_f64();
                expect_g += Distribution::uniform().log_density_f64(y);
                expect_m += Distribution::beta(3.0, 1.0).unwrap().log_density_f64(y)
                    + Distribution::normal(y, 1.0).unwrap().log_density_f64(0.8);
                assert_eq!(samples.len(), 2);
            }
            assert!((r.log_guide - expect_g).abs() < 1e-10, "guide weight");
            assert!((r.log_model - expect_m).abs() < 1e-10, "model weight");
            assert!(r.log_importance_weight().is_finite());
            assert_eq!(r.observations_used, 1);
            assert_eq!(r.model_value, Value::Real(x));
            assert_eq!(r.guide_value, Value::Unit);
        }
    }

    #[test]
    fn replay_reproduces_the_same_weights() {
        let (model, guide) = fig5();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.8)]);
        let spec = JointSpec::new("Model", "Guide1");
        let mut rng = Pcg32::seed_from_u64(5);
        let first = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
        let replayed = exec
            .run(&spec, LatentSource::Replay(&first.latent), &mut rng)
            .unwrap();
        assert_eq!(replayed.latent, first.latent);
        assert!((replayed.log_model - first.log_model).abs() < 1e-12);
        assert!((replayed.log_guide - first.log_guide).abs() < 1e-12);
    }

    #[test]
    fn dual_direction_latent_traces_replay_exactly() {
        // The model *sends* on the latent channel (`τ ⊃ A`), so the trace
        // records `valC` messages; replay must feed those back too.
        let model = parse_program(
            r#"
            proc Model() : real consume latent provide obs {
              let x <- sample send latent (Normal(0.0, 1.0));
              let y <- sample recv latent (Normal(x, 1.0));
              let _ <- sample send obs (Normal(y, 1.0));
              return x
            }
        "#,
        )
        .unwrap();
        let guide = parse_program(
            r#"
            proc Guide() provide latent {
              let x <- sample recv latent (Normal(0.0, 2.0));
              let y <- sample send latent (Normal(x, 2.0));
              return ()
            }
        "#,
        )
        .unwrap();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.5)]);
        let spec = JointSpec::new("Model", "Guide");
        let mut rng = Pcg32::seed_from_u64(17);
        let first = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
        // The recorded trace mixes both directions.
        assert!(first
            .latent
            .messages()
            .iter()
            .any(|m| matches!(m, Message::ValC(_))));
        assert!(first
            .latent
            .messages()
            .iter()
            .any(|m| matches!(m, Message::ValP(_))));
        let replayed = exec
            .run(&spec, LatentSource::Replay(&first.latent), &mut rng)
            .unwrap();
        assert_eq!(replayed.latent, first.latent);
        assert_eq!(replayed.log_model.to_bits(), first.log_model.to_bits());
        assert_eq!(replayed.log_guide.to_bits(), first.log_guide.to_bits());
    }

    #[test]
    fn joint_execution_agrees_with_trace_semantics() {
        // Cross-validation: score the recorded latent trace with the
        // big-step evaluator of ppl-semantics and compare.
        use ppl_semantics::Evaluator;
        let (model, guide) = fig5();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.8)]);
        let spec = JointSpec::new("Model", "Guide1");
        let mut rng = Pcg32::seed_from_u64(123);
        let r = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
        let obs_trace = Trace::from_messages(vec![Message::ValP(Sample::Real(0.8))]);
        let model_eval = Evaluator::new(&model)
            .run_proc(&"Model".into(), &[], &r.latent, &obs_trace)
            .unwrap();
        assert!((model_eval.log_weight - r.log_model).abs() < 1e-10);
        let guide_eval = Evaluator::new(&guide)
            .run_proc(&"Guide1".into(), &[], &Trace::new(), &r.latent)
            .unwrap();
        assert!((guide_eval.log_weight - r.log_guide).abs() < 1e-10);
    }

    #[test]
    fn unsound_guide_is_detected_or_zero_weighted() {
        // Guide1' from Fig. 3: wrong support for @x and wrong branch
        // structure for @y.
        let (model, _) = fig5();
        let bad_guide = parse_program(
            r#"
            proc GuideBad() provide latent {
              let v <- sample send latent (Pois(4.0));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Unif);
                return ()
              }
            }
        "#,
        )
        .unwrap();
        let exec = JointExecutor::new(&model, &bad_guide, vec![Sample::Real(0.8)]);
        let spec = JointSpec::new("Model", "GuideBad");
        let mut rng = Pcg32::seed_from_u64(3);
        let mut zero_weight = 0usize;
        for _ in 0..50 {
            match exec.run(&spec, LatentSource::FromGuide, &mut rng) {
                Ok(r) => {
                    // The model's Gamma prior cannot support a natural-number
                    // sample, so the model weight must be zero.
                    assert_eq!(r.log_model, f64::NEG_INFINITY);
                    zero_weight += 1;
                }
                Err(RuntimeError::ProtocolViolation(_)) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(zero_weight > 0);
    }

    #[test]
    fn observation_count_is_checked() {
        let (model, guide) = fig5();
        let spec = JointSpec::new("Model", "Guide1");
        let mut rng = Pcg32::seed_from_u64(9);
        // Too few observations.
        let exec = JointExecutor::new(&model, &guide, vec![]);
        assert!(matches!(
            exec.run(&spec, LatentSource::FromGuide, &mut rng),
            Err(RuntimeError::ObservationMismatch(_))
        ));
        // Too many observations.
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.8), Sample::Real(0.9)]);
        assert!(matches!(
            exec.run(&spec, LatentSource::FromGuide, &mut rng),
            Err(RuntimeError::ObservationMismatch(_))
        ));
    }

    #[test]
    fn recursive_model_and_guide_fold_together() {
        let model = parse_program(
            r#"
            proc GeoModel() : real consume latent provide obs {
              let n <- call GeoStep(0.5);
              let _ <- sample send obs (Normal(n, 1.0));
              return n
            }
            proc GeoStep(p : ureal) : real consume latent {
              let u <- sample recv latent (Unif);
              if send latent (u < p) {
                return 0.0
              } else {
                let rest <- call GeoStep(p);
                return rest + 1.0
              }
            }
        "#,
        )
        .unwrap();
        let guide = parse_program(
            r#"
            proc GeoGuide() provide latent {
              let _ <- call GeoStepGuide();
              return ()
            }
            proc GeoStepGuide() provide latent {
              let u <- sample send latent (Unif);
              if recv latent {
                return ()
              } else {
                let _ <- call GeoStepGuide();
                return ()
              }
            }
        "#,
        )
        .unwrap();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(1.0)]);
        let spec = JointSpec::new("GeoModel", "GeoGuide");
        let mut rng = Pcg32::seed_from_u64(77);
        for _ in 0..100 {
            let r = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
            // Each recursion level contributes one Unif sample and one
            // selection; the number of folds equals the recursion depth.
            let folds = r
                .latent
                .messages()
                .iter()
                .filter(|m| matches!(m, Message::Fold))
                .count();
            let samples = r.latent_samples().len();
            assert_eq!(samples, folds, "one unif per recursion level");
            assert!(r.log_importance_weight().is_finite());
        }
    }

    #[test]
    fn executor_is_send_sync_and_cheap_to_share() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let (model, guide) = fig5();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.8)]);
        assert_send_sync(&exec);
        // Clones share the same compiled programs.
        let clone = exec.clone();
        assert!(Arc::ptr_eq(exec.model_program(), clone.model_program()));
        assert!(Arc::ptr_eq(exec.guide_program(), clone.guide_program()));
        // from_compiled reuses a compilation across observation sets.
        let other = JointExecutor::from_compiled(
            Arc::clone(exec.model_program()),
            Arc::clone(exec.guide_program()),
            vec![Sample::Real(0.1)],
        );
        assert!(Arc::ptr_eq(exec.model_program(), other.model_program()));
        assert_eq!(other.observations(), &[Sample::Real(0.1)]);
    }

    #[test]
    fn identical_runs_from_identical_rng_states_agree_across_threads() {
        let (model, guide) = fig5();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.8)]);
        let spec = JointSpec::new("Model", "Guide1");
        let master = Pcg32::seed_from_u64(99);
        let sequential: Vec<JointResult> = (0..16)
            .map(|i| {
                let mut rng = master.split(i);
                exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap()
            })
            .collect();
        let mut parallel: Vec<Option<JointResult>> = vec![None; 16];
        std::thread::scope(|s| {
            for (chunk_idx, chunk) in parallel.chunks_mut(4).enumerate() {
                let exec = &exec;
                let spec = &spec;
                let master = &master;
                s.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let i = (chunk_idx * 4 + j) as u64;
                        let mut rng = master.split(i);
                        *slot = Some(exec.run(spec, LatentSource::FromGuide, &mut rng).unwrap());
                    }
                });
            }
        });
        for (seq, par) in sequential.iter().zip(&parallel) {
            let par = par.as_ref().unwrap();
            assert_eq!(seq.latent, par.latent);
            assert_eq!(seq.log_guide.to_bits(), par.log_guide.to_bits());
            assert_eq!(seq.log_model.to_bits(), par.log_model.to_bits());
        }
    }

    #[test]
    fn spec_builders() {
        let spec = JointSpec::new("M", "G")
            .with_model_args(vec![Value::Real(1.0)])
            .with_guide_args(vec![Value::Real(2.0), Value::Real(3.0)]);
        assert_eq!(spec.model_args.len(), 1);
        assert_eq!(spec.guide_args.len(), 2);
        assert_eq!(spec.latent_chan.as_str(), "latent");
        assert_eq!(spec.obs_chan.as_str(), "obs");
    }
}
