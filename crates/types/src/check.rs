//! Guide-type checking for commands (the `TM:*` rules of Fig. 9 / Fig. 12).
//!
//! The rules form a backward, syntax-directed system: starting from the
//! continuation protocols of the consumed and provided channels, checking a
//! command *prepends* the messages it exchanges, yielding the protocols that
//! must hold before the command runs.  Interpreted as a function from
//! continuation types to prefix types, the same rules are the type-inference
//! algorithm of §4.

use crate::base::{check_expr, infer_expr, is_subtype, join, TypingCtx};
use crate::error::TypeError;
use crate::guide::GuideType;
use ppl_syntax::ast::{BaseType, Cmd, Dir, Expr, Ident, Proc};
use std::collections::HashMap;

/// The signature of a procedure:
/// `τ̄₁ ⇝ τ₂ | (a : T_a); (b : T_b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcSignature {
    /// Parameter types in order.
    pub params: Vec<BaseType>,
    /// Result type.
    pub ret: BaseType,
    /// The consumed channel and its type operator, if any.
    pub consumes: Option<(Ident, String)>,
    /// The provided channel and its type operator, if any.
    pub provides: Option<(Ident, String)>,
}

impl ProcSignature {
    /// Builds the signature skeleton for a procedure declaration, naming the
    /// fresh type operators after the procedure and channel (e.g.
    /// `T_PcfgGen_latent`).
    pub fn for_proc(p: &Proc) -> Self {
        ProcSignature {
            params: p.params.iter().map(|(_, t)| t.clone()).collect(),
            ret: p.ret_ty.clone(),
            consumes: p.consumes.map(|c| (c, format!("T_{}_{}", p.name, c))),
            provides: p.provides.map(|c| (c, format!("T_{}_{}", p.name, c))),
        }
    }
}

/// The procedure-signature table `Σ`.
pub type Sigma = HashMap<Ident, ProcSignature>;

/// The pair of channel protocols threaded through command checking:
/// the consumed channel `a` and the provided channel `b`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelTypes {
    /// Protocol of the consumed channel (meaningful only if the procedure
    /// declares one).
    pub consumed: GuideType,
    /// Protocol of the provided channel (meaningful only if the procedure
    /// declares one).
    pub provided: GuideType,
}

impl ChannelTypes {
    /// Both channels ended.
    pub fn ended() -> Self {
        ChannelTypes {
            consumed: GuideType::End,
            provided: GuideType::End,
        }
    }
}

/// Checking context for a single procedure body.
#[derive(Debug, Clone)]
pub struct CheckCtx<'a> {
    /// The global signature table.
    pub sigma: &'a Sigma,
    /// The channel consumed by the current procedure, if any.
    pub consumes: Option<Ident>,
    /// The channel provided by the current procedure, if any.
    pub provides: Option<Ident>,
}

/// Which side of the procedure a channel name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Consumed,
    Provided,
}

impl CheckCtx<'_> {
    fn side_of(&self, chan: &Ident) -> Result<Side, TypeError> {
        if self.consumes.as_ref() == Some(chan) {
            Ok(Side::Consumed)
        } else if self.provides.as_ref() == Some(chan) {
            Ok(Side::Provided)
        } else {
            Err(TypeError::new(format!(
                "channel '{chan}' is not declared by this procedure (consumes {:?}, provides {:?})",
                self.consumes.as_ref().map(|c| c.as_str()),
                self.provides.as_ref().map(|c| c.as_str()),
            ))
            .with_code(crate::error::code::CHANNEL_UNDECLARED))
        }
    }
}

/// Computes the base (value) type of a command in a forward pass.
///
/// Base types do not depend on guide types, so this pass supplies the
/// binder types needed by the backward guide-type pass.
///
/// # Errors
///
/// Returns a [`TypeError`] for ill-typed embedded expressions, unknown
/// procedures, or branches whose value types have no join.
pub fn base_type_of_cmd(
    ctx: &CheckCtx<'_>,
    gamma: &TypingCtx,
    cmd: &Cmd,
) -> Result<BaseType, TypeError> {
    match cmd {
        Cmd::Ret(e) => infer_expr(gamma, e),
        Cmd::Bind { var, first, rest } => {
            let t1 = base_type_of_cmd(ctx, gamma, first)?;
            let inner = gamma.extended(*var, t1);
            base_type_of_cmd(ctx, &inner, rest)
        }
        Cmd::Call { proc, args } => {
            let sig = ctx.sigma.get(proc).ok_or_else(|| {
                TypeError::new(format!("unknown procedure '{proc}'"))
                    .with_code(crate::error::code::UNKNOWN_PROC)
            })?;
            if sig.params.len() != args.len() {
                return Err(TypeError::new(format!(
                    "procedure '{proc}' expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ))
                .with_code(crate::error::code::ARITY));
            }
            for (arg, expected) in args.iter().zip(&sig.params) {
                check_expr(gamma, arg, expected)
                    .map_err(|e| e.context(format!("argument of '{proc}'")))?;
            }
            Ok(sig.ret.clone())
        }
        Cmd::Sample { dist, .. } => match infer_expr(gamma, dist)? {
            BaseType::Dist(carrier) => Ok(*carrier),
            other => Err(TypeError::new(format!(
                "sample requires a distribution expression, found {other}"
            ))
            .with_code(crate::error::code::SAMPLE_NOT_DIST)),
        },
        Cmd::Branch {
            pred,
            then_cmd,
            else_cmd,
            dir,
            ..
        } => {
            if let Some(p) = pred {
                check_expr(gamma, p, &BaseType::Bool)?;
            } else if *dir == Dir::Send {
                return Err(TypeError::new(
                    "a branch in the send direction requires a predicate",
                ));
            }
            let t1 = base_type_of_cmd(ctx, gamma, then_cmd)?;
            let t2 = base_type_of_cmd(ctx, gamma, else_cmd)?;
            join(&t1, &t2).ok_or_else(|| {
                TypeError::new(format!(
                    "branches return incompatible value types {t1} and {t2}"
                ))
                .with_code(crate::error::code::BRANCH_VALUE_JOIN)
            })
        }
    }
}

/// The result of checking a command: its value type and the channel
/// protocols *before* the command executes.
#[derive(Debug, Clone, PartialEq)]
pub struct CmdTyping {
    /// The command's value type `τ`.
    pub value_ty: BaseType,
    /// Channel protocols before the command.
    pub before: ChannelTypes,
}

/// Backward guide-type checking of a command
/// (`Γ | (a : A); (b : B) ⊢_Σ m ∼ τ | (a : A'); (b : B')` read as a function
/// from `A'`, `B'` to `A`, `B`).
///
/// # Errors
///
/// Returns a [`TypeError`] when the command communicates on an undeclared
/// channel, when the two arms of a branch disagree on the protocol of the
/// non-branching channel, or when embedded expressions are ill-typed.
pub fn check_cmd(
    ctx: &CheckCtx<'_>,
    gamma: &TypingCtx,
    cmd: &Cmd,
    after: &ChannelTypes,
) -> Result<CmdTyping, TypeError> {
    match cmd {
        Cmd::Ret(e) => {
            let value_ty = infer_expr(gamma, e)?;
            Ok(CmdTyping {
                value_ty,
                before: after.clone(),
            })
        }
        Cmd::Bind { var, first, rest } => {
            // Forward pass for the binder's base type, then backward through
            // `rest` and finally `first`.
            let t1 = base_type_of_cmd(ctx, gamma, first)?;
            let inner = gamma.extended(*var, t1.clone());
            let rest_typing = check_cmd(ctx, &inner, rest, after)?;
            let first_typing = check_cmd(ctx, gamma, first, &rest_typing.before)?;
            if !is_subtype(&first_typing.value_ty, &t1) && first_typing.value_ty != t1 {
                return Err(TypeError::new(format!(
                    "internal: binder type mismatch {t1} vs {}",
                    first_typing.value_ty
                )));
            }
            Ok(CmdTyping {
                value_ty: rest_typing.value_ty,
                before: first_typing.before,
            })
        }
        Cmd::Call { proc, args } => {
            let sig = ctx.sigma.get(proc).ok_or_else(|| {
                TypeError::new(format!("unknown procedure '{proc}'"))
                    .with_code(crate::error::code::UNKNOWN_PROC)
            })?;
            if sig.params.len() != args.len() {
                return Err(TypeError::new(format!(
                    "procedure '{proc}' expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ))
                .with_code(crate::error::code::ARITY));
            }
            for (arg, expected) in args.iter().zip(&sig.params) {
                check_expr(gamma, arg, expected)
                    .map_err(|e| e.context(format!("argument of '{proc}'")))?;
            }
            // Channel discipline: a callee may only use the caller's channels
            // in the same roles.
            let mut consumed = after.consumed.clone();
            let mut provided = after.provided.clone();
            if let Some((chan, op)) = &sig.consumes {
                if ctx.consumes.as_ref() != Some(chan) {
                    return Err(TypeError::new(format!(
                        "callee '{proc}' consumes channel '{chan}' which the caller does not consume"
                    ))
                    .with_code(crate::error::code::CHANNEL_FOREIGN));
                }
                consumed = GuideType::app(op.clone(), consumed);
            }
            if let Some((chan, op)) = &sig.provides {
                if ctx.provides.as_ref() != Some(chan) {
                    return Err(TypeError::new(format!(
                        "callee '{proc}' provides channel '{chan}' which the caller does not provide"
                    ))
                    .with_code(crate::error::code::CHANNEL_FOREIGN));
                }
                provided = GuideType::app(op.clone(), provided);
            }
            Ok(CmdTyping {
                value_ty: sig.ret.clone(),
                before: ChannelTypes { consumed, provided },
            })
        }
        Cmd::Sample { dir, chan, dist } => {
            let carrier = match infer_expr(gamma, dist)? {
                BaseType::Dist(c) => *c,
                other => {
                    return Err(TypeError::new(format!(
                        "sample requires a distribution expression, found {other}"
                    ))
                    .with_code(crate::error::code::SAMPLE_NOT_DIST))
                }
            };
            let side = ctx.side_of(chan)?;
            let before = match (side, dir) {
                // (TM:Sample:Recv:L) — consumed channel, provider sends to us.
                (Side::Consumed, Dir::Recv) => ChannelTypes {
                    consumed: GuideType::send_val(carrier.clone(), after.consumed.clone()),
                    provided: after.provided.clone(),
                },
                // (TM:Sample:Send:L) — consumed channel, we (the consumer) send.
                (Side::Consumed, Dir::Send) => ChannelTypes {
                    consumed: GuideType::recv_val(carrier.clone(), after.consumed.clone()),
                    provided: after.provided.clone(),
                },
                // (TM:Sample:Send:R) — provided channel, we (the provider) send.
                (Side::Provided, Dir::Send) => ChannelTypes {
                    consumed: after.consumed.clone(),
                    provided: GuideType::send_val(carrier.clone(), after.provided.clone()),
                },
                // (TM:Sample:Recv:R) — provided channel, the consumer sends.
                (Side::Provided, Dir::Recv) => ChannelTypes {
                    consumed: after.consumed.clone(),
                    provided: GuideType::recv_val(carrier.clone(), after.provided.clone()),
                },
            };
            Ok(CmdTyping {
                value_ty: carrier,
                before,
            })
        }
        Cmd::Branch {
            dir,
            chan,
            pred,
            then_cmd,
            else_cmd,
        } => {
            if let Some(p) = pred {
                check_expr(gamma, p, &BaseType::Bool)?;
            } else if *dir == Dir::Send {
                return Err(TypeError::new(
                    "a branch in the send direction requires a predicate",
                ));
            }
            let then_typing = check_cmd(ctx, gamma, then_cmd, after)?;
            let else_typing = check_cmd(ctx, gamma, else_cmd, after)?;
            let value_ty = join(&then_typing.value_ty, &else_typing.value_ty).ok_or_else(|| {
                TypeError::new(format!(
                    "branches return incompatible value types {} and {}",
                    then_typing.value_ty, else_typing.value_ty
                ))
                .with_code(crate::error::code::BRANCH_VALUE_JOIN)
            })?;
            let side = ctx.side_of(chan)?;
            let before = match side {
                Side::Consumed => {
                    // The protocol of the *provided* channel must not depend
                    // on this branch.
                    if then_typing.before.provided != else_typing.before.provided {
                        return Err(TypeError::new(format!(
                            "the two branches of the conditional on channel '{chan}' disagree on the protocol of the provided channel: {} vs {}",
                            then_typing.before.provided, else_typing.before.provided
                        ))
                        .with_code(crate::error::code::BRANCH_PROTOCOL));
                    }
                    let consumed = match dir {
                        // (TM:Cond:Recv:L): A₁ ⊕ A₂.
                        Dir::Recv => GuideType::offer(
                            then_typing.before.consumed.clone(),
                            else_typing.before.consumed.clone(),
                        ),
                        // (TM:Cond:Send:L): A₁ & A₂.
                        Dir::Send => GuideType::accept(
                            then_typing.before.consumed.clone(),
                            else_typing.before.consumed.clone(),
                        ),
                    };
                    ChannelTypes {
                        consumed,
                        provided: then_typing.before.provided.clone(),
                    }
                }
                Side::Provided => {
                    if then_typing.before.consumed != else_typing.before.consumed {
                        return Err(TypeError::new(format!(
                            "the two branches of the conditional on channel '{chan}' disagree on the protocol of the consumed channel: {} vs {}",
                            then_typing.before.consumed, else_typing.before.consumed
                        ))
                        .with_code(crate::error::code::BRANCH_PROTOCOL));
                    }
                    let provided = match dir {
                        // (TM:Cond:Send:R): B₁ ⊕ B₂.
                        Dir::Send => GuideType::offer(
                            then_typing.before.provided.clone(),
                            else_typing.before.provided.clone(),
                        ),
                        // (TM:Cond:Recv:R): B₁ & B₂.
                        Dir::Recv => GuideType::accept(
                            then_typing.before.provided.clone(),
                            else_typing.before.provided.clone(),
                        ),
                    };
                    ChannelTypes {
                        consumed: then_typing.before.consumed.clone(),
                        provided,
                    }
                }
            };
            Ok(CmdTyping { value_ty, before })
        }
    }
}

/// Re-exported helper: checks an expression against `Bool` (used by the
/// runtime to validate predicates before joint execution).
pub fn expr_is_boolean(gamma: &TypingCtx, e: &Expr) -> bool {
    check_expr(gamma, e, &BaseType::Bool).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    fn fig5_model_src() -> &'static str {
        r#"
        proc Model() : real consume latent provide obs {
          let v <- sample recv latent (Gamma(2.0, 1.0));
          if send latent (v < 2.0) {
            let _ <- sample send obs (Normal(-1.0, 1.0));
            return v
          } else {
            let m <- sample recv latent (Beta(3.0, 1.0));
            let _ <- sample send obs (Normal(m, 1.0));
            return v
          }
        }
        "#
    }

    fn check_single_proc(src: &str) -> Result<CmdTyping, TypeError> {
        let prog = parse_program(src).unwrap();
        let p = &prog.procs[0];
        let mut sigma = Sigma::new();
        for q in &prog.procs {
            sigma.insert(q.name, ProcSignature::for_proc(q));
        }
        let ctx = CheckCtx {
            sigma: &sigma,
            consumes: p.consumes,
            provides: p.provides,
        };
        let gamma = TypingCtx::from_params(&p.params);
        check_cmd(&ctx, &gamma, &p.body, &ChannelTypes::ended())
    }

    #[test]
    fn fig5_model_protocols() {
        let typing = check_single_proc(fig5_model_src()).unwrap();
        // The inferred value type is the most precise one (ℝ+, the Gamma
        // carrier), a subtype of the declared ℝ.
        assert_eq!(typing.value_ty, BaseType::PosReal);
        // latent : ℝ+ ∧ (1 & (ℝ(0,1) ∧ 1))
        let expected_latent = GuideType::send_val(
            BaseType::PosReal,
            GuideType::accept(
                GuideType::End,
                GuideType::send_val(BaseType::UnitInterval, GuideType::End),
            ),
        );
        assert_eq!(typing.before.consumed, expected_latent);
        // obs : ℝ ∧ 1
        assert_eq!(
            typing.before.provided,
            GuideType::send_val(BaseType::Real, GuideType::End)
        );
    }

    #[test]
    fn fig5_guide_protocol_matches_model() {
        let guide = r#"
        proc Guide1() provide latent {
          let v <- sample send latent (Gamma(1.0, 1.0));
          if recv latent {
            return ()
          } else {
            let _ <- sample send latent (Unif);
            return ()
          }
        }
        "#;
        let typing = check_single_proc(guide).unwrap();
        let expected_latent = GuideType::send_val(
            BaseType::PosReal,
            GuideType::accept(
                GuideType::End,
                GuideType::send_val(BaseType::UnitInterval, GuideType::End),
            ),
        );
        assert_eq!(typing.before.provided, expected_latent);
        assert_eq!(typing.before.consumed, GuideType::End);
    }

    #[test]
    fn unsound_guide1_prime_has_different_protocol() {
        // Guide1' from Fig. 3 samples @x from a Poisson (support ℕ).
        let guide = r#"
        proc GuideBad() provide latent {
          let v <- sample send latent (Pois(4.0));
          if recv latent {
            return ()
          } else {
            let _ <- sample send latent (Unif);
            return ()
          }
        }
        "#;
        let typing = check_single_proc(guide).unwrap();
        match &typing.before.provided {
            GuideType::SendVal(t, _) => assert_eq!(*t, BaseType::Nat),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn branch_on_consumed_channel_requires_equal_obs_protocol() {
        // The else-branch observes twice, so the two branches disagree on
        // the provided channel's protocol and checking must fail.
        let src = r#"
        proc Model() consume latent provide obs {
          let v <- sample recv latent (Unif);
          if send latent (v < 0.5) {
            let _ <- sample send obs (Normal(0.0, 1.0));
            return ()
          } else {
            let _ <- sample send obs (Normal(0.0, 1.0));
            let _ <- sample send obs (Normal(0.0, 1.0));
            return ()
          }
        }
        "#;
        let err = check_single_proc(src).unwrap_err();
        assert!(err.message.contains("disagree"), "{}", err.message);
    }

    #[test]
    fn sample_on_undeclared_channel_is_rejected() {
        let src = r#"
        proc Model() consume latent {
          let _ <- sample recv other (Unif);
          return ()
        }
        "#;
        let err = check_single_proc(src).unwrap_err();
        assert!(err.message.contains("not declared"), "{}", err.message);
    }

    #[test]
    fn call_threads_type_operator() {
        let src = r#"
        proc Helper() consume latent {
          let _ <- sample recv latent (Unif);
          return ()
        }
        proc Main() consume latent {
          let _ <- call Helper();
          let _ <- sample recv latent (Normal(0.0, 1.0));
          return ()
        }
        "#;
        let prog = parse_program(src).unwrap();
        let mut sigma = Sigma::new();
        for q in &prog.procs {
            sigma.insert(q.name, ProcSignature::for_proc(q));
        }
        let main = prog.proc_named("Main").unwrap();
        let ctx = CheckCtx {
            sigma: &sigma,
            consumes: main.consumes,
            provides: main.provides,
        };
        let typing =
            check_cmd(&ctx, &TypingCtx::new(), &main.body, &ChannelTypes::ended()).unwrap();
        // Expected: T_Helper_latent[ℝ ∧ 1]
        assert_eq!(
            typing.before.consumed,
            GuideType::app(
                "T_Helper_latent",
                GuideType::send_val(BaseType::Real, GuideType::End)
            )
        );
    }

    #[test]
    fn call_argument_arity_and_type_errors() {
        let src = r#"
        proc Helper(p : ureal) consume latent {
          let _ <- sample recv latent (Ber(p));
          return ()
        }
        proc Main() consume latent {
          let _ <- call Helper(2.0);
          return ()
        }
        "#;
        let prog = parse_program(src).unwrap();
        let mut sigma = Sigma::new();
        for q in &prog.procs {
            sigma.insert(q.name, ProcSignature::for_proc(q));
        }
        let main = prog.proc_named("Main").unwrap();
        let ctx = CheckCtx {
            sigma: &sigma,
            consumes: main.consumes,
            provides: main.provides,
        };
        let err =
            check_cmd(&ctx, &TypingCtx::new(), &main.body, &ChannelTypes::ended()).unwrap_err();
        assert!(err.message.contains("argument"), "{}", err.message);
    }

    #[test]
    fn callee_with_foreign_channel_is_rejected() {
        let src = r#"
        proc Helper() consume other {
          let _ <- sample recv other (Unif);
          return ()
        }
        proc Main() consume latent {
          let _ <- call Helper();
          return ()
        }
        "#;
        let prog = parse_program(src).unwrap();
        let mut sigma = Sigma::new();
        for q in &prog.procs {
            sigma.insert(q.name, ProcSignature::for_proc(q));
        }
        let main = prog.proc_named("Main").unwrap();
        let ctx = CheckCtx {
            sigma: &sigma,
            consumes: main.consumes,
            provides: main.provides,
        };
        let err =
            check_cmd(&ctx, &TypingCtx::new(), &main.body, &ChannelTypes::ended()).unwrap_err();
        assert!(err.message.contains("consumes channel"), "{}", err.message);
    }

    #[test]
    fn unknown_procedure_is_reported() {
        let src = r#"
        proc Main() consume latent {
          let _ <- call Nope();
          return ()
        }
        "#;
        let err = check_single_proc(src).unwrap_err();
        assert!(err.message.contains("unknown procedure"), "{}", err.message);
    }

    #[test]
    fn base_type_of_cmd_branches_join() {
        let src = r#"
        proc P() consume latent {
          let u <- sample recv latent (Unif);
          if send latent (u < 0.5) {
            return 0.5
          } else {
            return 2.0
          }
        }
        "#;
        let prog = parse_program(src).unwrap();
        let p = &prog.procs[0];
        let mut sigma = Sigma::new();
        sigma.insert(p.name, ProcSignature::for_proc(p));
        let ctx = CheckCtx {
            sigma: &sigma,
            consumes: p.consumes,
            provides: p.provides,
        };
        let t = base_type_of_cmd(&ctx, &TypingCtx::new(), &p.body).unwrap();
        assert_eq!(t, BaseType::PosReal);
    }

    #[test]
    fn expr_is_boolean_helper() {
        let gamma = TypingCtx::new();
        assert!(expr_is_boolean(
            &gamma,
            &ppl_syntax::parse_expr("1.0 < 2.0").unwrap()
        ));
        assert!(!expr_is_boolean(
            &gamma,
            &ppl_syntax::parse_expr("1.0 + 2.0").unwrap()
        ));
    }
}
