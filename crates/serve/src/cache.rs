//! The deterministic LRU response cache.
//!
//! Every query result in this system is a **pure function** of the
//! canonical request fingerprint — model name, exact observation bits,
//! method configuration, seed, and summary statistic — because inference
//! draws all randomness from the request's own seed (PR 2's substream
//! engine) and thread counts never change results.  A cache hit is
//! therefore *exact*: the stored response body is byte-identical to what a
//! fresh run would produce, not an approximation of it.  That turns the
//! cache into free amortisation for repeated queries (the serving analogue
//! of amortized inference) with no correctness trade-off at all.
//!
//! The implementation is a plain mutex-guarded map with last-use ticks and
//! scan-on-evict — O(capacity) eviction is irrelevant next to the hundreds
//! of microseconds a cache *miss* costs, and the simplicity keeps the
//! lock-hold time trivial.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Entry {
    body: Arc<str>,
    last_used: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// A bounded LRU map from canonical request fingerprints to response
/// bodies, with hit/miss accounting.
pub struct ResponseCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish_non_exhaustive()
    }
}

impl ResponseCache {
    /// Creates a cache holding at most `capacity` responses; capacity 0
    /// disables caching (every lookup is a miss, nothing is stored).
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a fingerprint, refreshing its recency on a hit.
    pub fn get(&self, fingerprint: &str) -> Option<Arc<str>> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(fingerprint) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.body))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a response, evicting the least-recently-used entry when
    /// full.  Re-inserting an existing fingerprint refreshes its body and
    /// recency.
    pub fn insert(&self, fingerprint: String, body: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&fingerprint) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            fingerprint,
            Entry {
                body,
                last_used: tick,
            },
        );
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup count that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup count that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits as a fraction of all lookups (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total > 0.0 {
            hits / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = ResponseCache::new(2);
        cache.insert("a".into(), "A".into());
        cache.insert("b".into(), "B".into());
        assert_eq!(cache.get("a").as_deref(), Some("A")); // refresh a
        cache.insert("c".into(), "C".into()); // evicts b
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a").as_deref(), Some("A"));
        assert_eq!(cache.get("c").as_deref(), Some("C"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let cache = ResponseCache::new(2);
        cache.insert("a".into(), "A".into());
        cache.insert("b".into(), "B".into());
        cache.insert("a".into(), "A2".into()); // same key: no eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a").as_deref(), Some("A2"));
        assert_eq!(cache.get("b").as_deref(), Some("B"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0);
        cache.insert("a".into(), "A".into());
        assert!(cache.is_empty());
        assert_eq!(cache.get("a"), None);
        assert_eq!(cache.hit_rate(), 0.0);
    }
}
