//! Recursive-descent parser for the surface syntax.
//!
//! The surface syntax mirrors the paper's presentation (Fig. 5, Fig. 6,
//! Fig. 10) with ASCII spellings:
//!
//! ```text
//! proc Model() : real consume latent provide obs {
//!   let v <- sample recv latent (Gamma(2.0, 1.0));
//!   if send latent (v < 2.0) {
//!     let _ <- sample send obs (Normal(-1.0, 1.0));
//!     return v
//!   } else {
//!     let m <- sample recv latent (Beta(3.0, 1.0));
//!     let _ <- sample send obs (Normal(m, 1.0));
//!     return v
//!   }
//! }
//! ```

use crate::ast::{BaseType, BinOp, Cmd, Dir, DistExpr, Expr, Ident, Proc, Program, UnOp};
use crate::lexer::{lex, LexError, Spanned, Token};
use std::fmt;

/// Maximum nesting depth accepted by the parser.
///
/// Recursive descent uses one stack frame per nesting level, so untrusted
/// sources (e.g. models submitted over HTTP) could otherwise smash the
/// stack with a few kilobytes of open parentheses. Deeper input is rejected
/// with the stable code [`code::DEPTH`] instead of crashing the process.
///
/// The bound is sized so the parser stays well inside a 2 MiB thread stack
/// even in debug builds (expression nesting costs two depth units and about
/// eight stack frames per parenthesis level).
pub const MAX_PARSE_DEPTH: usize = 128;

/// Stable machine-readable parse-error codes, part of the wire format of
/// `ppl-serve`. Once shipped, a code's meaning never changes.
pub mod code {
    /// The lexer rejected the input (bad character, malformed literal).
    pub const LEX: &str = "parse.lex";
    /// The parser found a token that does not fit the grammar.
    pub const UNEXPECTED_TOKEN: &str = "parse.unexpected_token";
    /// Nesting exceeded [`super::MAX_PARSE_DEPTH`].
    pub const DEPTH: &str = "parse.depth";
}

/// A parse error with source position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Stable machine-readable code (see [`code`]).
    pub code: &'static str,
}

impl ParseError {
    /// Stable machine-readable code identifying the error class
    /// (`parse.lex`, `parse.unexpected_token`, `parse.depth`).
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// 1-based (line, column) of the offending token.
    pub fn position(&self) -> (usize, usize) {
        (self.line, self.col)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
            code: code::LEX,
        }
    }
}

/// Parses a whole program (a sequence of procedure declarations).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Example
///
/// ```
/// let src = "proc Main() { return () }";
/// let prog = ppl_syntax::parse_program(src)?;
/// assert_eq!(prog.procs.len(), 1);
/// # Ok::<(), ppl_syntax::ParseError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    p.program()
}

/// Parses a single expression (useful in tests and the REPL-style examples).
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a single well-formed
/// expression.
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    depth: usize,
}

const KEYWORDS: &[&str] = &[
    "proc", "consume", "provide", "let", "in", "return", "sample", "send", "recv", "call", "if",
    "else", "then", "fn", "true", "false", "unit", "bool", "ureal", "preal", "real", "nat", "dist",
    "exp", "ln", "sqrt", "Ber", "Unif", "Beta", "Gamma", "Normal", "Cat", "Geo", "Pois",
];

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_at(&self, offset: usize) -> &Token {
        let i = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[i].token
    }

    fn here(&self) -> (usize, usize) {
        let s = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        (s.line, s.col)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            message: message.into(),
            line,
            col,
            code: code::UNEXPECTED_TOKEN,
        }
    }

    /// Enters one nesting level; rejects input deeper than
    /// [`MAX_PARSE_DEPTH`] so untrusted sources cannot overflow the stack.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            let mut e = self.error(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} levels; simplify the program"
            ));
            e.code = code::DEPTH;
            return Err(e);
        }
        Ok(())
    }

    fn exit(&mut self) {
        self.depth -= 1;
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Token) -> Result<(), ParseError> {
        if self.peek() == expected {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected '{expected}', found '{}'", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Token::Ident(s) if s == kw => {
                self.advance();
                Ok(())
            }
            other => Err(self.error(format!("expected keyword '{kw}', found '{other}'"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                if KEYWORDS.contains(&s.as_str()) && s != "_" {
                    return Err(self.error(format!("'{s}' is a reserved keyword")));
                }
                self.advance();
                Ok(Ident::new(s))
            }
            other => Err(self.error(format!("expected identifier, found '{other}'"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input '{}'", self.peek())))
        }
    }

    // ---------------------------------------------------------------- program

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::new();
        while !matches!(self.peek(), Token::Eof) {
            prog.procs.push(self.proc_decl()?);
        }
        Ok(prog)
    }

    fn proc_decl(&mut self) -> Result<Proc, ParseError> {
        let pos = self.here();
        self.eat_keyword("proc")?;
        let name = self.ident()?;
        self.eat(&Token::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Token::RParen) {
            loop {
                let pname = self.ident()?;
                self.eat(&Token::Colon)?;
                let ty = self.base_type()?;
                params.push((pname, ty));
                if matches!(self.peek(), Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        let ret_ty = if matches!(self.peek(), Token::Colon) {
            self.advance();
            self.base_type()?
        } else {
            BaseType::Unit
        };
        let mut consumes = None;
        let mut provides = None;
        if self.at_keyword("consume") {
            self.advance();
            consumes = Some(self.ident()?);
        }
        if self.at_keyword("provide") {
            self.advance();
            provides = Some(self.ident()?);
        }
        let body = self.block()?;
        Ok(Proc {
            name,
            params,
            ret_ty,
            consumes,
            provides,
            body,
            pos,
        })
    }

    // ------------------------------------------------------------------ types

    fn base_type(&mut self) -> Result<BaseType, ParseError> {
        self.enter()?;
        let ty = self.base_type_inner();
        self.exit();
        ty
    }

    fn base_type_inner(&mut self) -> Result<BaseType, ParseError> {
        let head = match self.peek().clone() {
            Token::Ident(s) => s,
            Token::LParen => {
                self.advance();
                let a = self.base_type()?;
                self.eat(&Token::Arrow)?;
                let b = self.base_type()?;
                self.eat(&Token::RParen)?;
                return Ok(BaseType::arrow(a, b));
            }
            other => return Err(self.error(format!("expected a type, found '{other}'"))),
        };
        self.advance();
        let ty = match head.as_str() {
            "unit" => BaseType::Unit,
            "bool" => BaseType::Bool,
            "ureal" => BaseType::UnitInterval,
            "preal" => BaseType::PosReal,
            "real" => BaseType::Real,
            "nat" => {
                if matches!(self.peek(), Token::LBracket) {
                    self.advance();
                    let n = match self.advance() {
                        Token::Nat(n) => n as usize,
                        other => {
                            return Err(
                                self.error(format!("expected bound in nat[..], found '{other}'"))
                            )
                        }
                    };
                    self.eat(&Token::RBracket)?;
                    BaseType::FinNat(n)
                } else {
                    BaseType::Nat
                }
            }
            "dist" => {
                self.eat(&Token::LParen)?;
                let inner = self.base_type()?;
                self.eat(&Token::RParen)?;
                BaseType::dist(inner)
            }
            other => return Err(self.error(format!("unknown type '{other}'"))),
        };
        Ok(ty)
    }

    // --------------------------------------------------------------- commands

    fn block(&mut self) -> Result<Cmd, ParseError> {
        self.enter()?;
        self.eat(&Token::LBrace)?;
        let cmd = self.cmd_seq()?;
        self.eat(&Token::RBrace)?;
        self.exit();
        Ok(cmd)
    }

    fn cmd_seq(&mut self) -> Result<Cmd, ParseError> {
        // let x <- item ; seq   |   item ; seq   |   item
        //
        // Parsed iteratively so a long flat sequence costs no stack depth;
        // the binds are rebuilt right-associatively afterwards.
        let mut prefix: Vec<(Ident, Cmd)> = Vec::new();
        let last = loop {
            if self.at_keyword("let") && matches!(self.peek_at(2), Token::LeftArrow) {
                self.advance(); // let
                let var = self.ident()?;
                self.eat(&Token::LeftArrow)?;
                let first = self.cmd_item()?;
                self.eat(&Token::Semi)?;
                prefix.push((var, first));
                continue;
            }
            let first = self.cmd_item()?;
            if matches!(self.peek(), Token::Semi) {
                self.advance();
                prefix.push((Ident::new("_"), first));
            } else {
                break first;
            }
        };
        Ok(prefix
            .into_iter()
            .rev()
            .fold(last, |rest, (var, first)| Cmd::Bind {
                var,
                first: Box::new(first),
                rest: Box::new(rest),
            }))
    }

    fn cmd_item(&mut self) -> Result<Cmd, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) if s == "return" => {
                self.advance();
                let e = if matches!(self.peek(), Token::LParen)
                    && matches!(self.peek_at(1), Token::RParen)
                {
                    self.advance();
                    self.advance();
                    Expr::Triv
                } else {
                    self.expr()?
                };
                Ok(Cmd::Ret(e))
            }
            Token::Ident(s) if s == "sample" => {
                self.advance();
                let dir = self.direction()?;
                let chan = self.ident()?;
                self.eat(&Token::LParen)?;
                let dist = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(Cmd::Sample { dir, chan, dist })
            }
            Token::Ident(s) if s == "call" => {
                self.advance();
                let proc = self.ident()?;
                self.eat(&Token::LParen)?;
                let mut args = Vec::new();
                if !matches!(self.peek(), Token::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if matches!(self.peek(), Token::Comma) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.eat(&Token::RParen)?;
                Ok(Cmd::Call { proc, args })
            }
            Token::Ident(s) if s == "if" => {
                self.advance();
                let dir = self.direction()?;
                let chan = self.ident()?;
                let pred = if dir == Dir::Send {
                    self.eat(&Token::LParen)?;
                    let e = self.expr()?;
                    self.eat(&Token::RParen)?;
                    Some(e)
                } else {
                    None
                };
                let then_cmd = self.block()?;
                self.eat_keyword("else")?;
                let else_cmd = self.block()?;
                Ok(Cmd::Branch {
                    dir,
                    chan,
                    pred,
                    then_cmd: Box::new(then_cmd),
                    else_cmd: Box::new(else_cmd),
                })
            }
            Token::LBrace => self.block(),
            other => Err(self.error(format!(
                "expected a command (return / sample / call / if / block), found '{other}'"
            ))),
        }
    }

    fn direction(&mut self) -> Result<Dir, ParseError> {
        if self.at_keyword("send") {
            self.advance();
            Ok(Dir::Send)
        } else if self.at_keyword("recv") {
            self.advance();
            Ok(Dir::Recv)
        } else {
            Err(self.error(format!(
                "expected 'send' or 'recv', found '{}'",
                self.peek()
            )))
        }
    }

    // ------------------------------------------------------------ expressions

    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let e = self.or_expr();
        self.exit();
        e
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Token::OrOr) {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = Expr::binop(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Token::AndAnd) {
            self.advance();
            let rhs = self.cmp_expr()?;
            lhs = Expr::binop(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Token::Lt => Some(BinOp::Lt),
            Token::Le => Some(BinOp::Le),
            Token::Gt => Some(BinOp::Gt),
            Token::Ge => Some(BinOp::Ge),
            Token::EqEq => Some(BinOp::Eq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.add_expr()?;
            Ok(Expr::binop(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let e = match self.peek() {
            Token::Minus => {
                self.advance();
                self.unary_expr().map(|e| Expr::unop(UnOp::Neg, e))
            }
            Token::Bang => {
                self.advance();
                self.unary_expr().map(|e| Expr::unop(UnOp::Not, e))
            }
            _ => self.atom_expr(),
        };
        self.exit();
        e
    }

    fn dist_two_args(&mut self) -> Result<(Expr, Expr), ParseError> {
        self.eat(&Token::LParen)?;
        let a = self.expr()?;
        if matches!(self.peek(), Token::Comma | Token::Semi) {
            self.advance();
        } else {
            return Err(self.error("expected ',' between distribution parameters"));
        }
        let b = self.expr()?;
        self.eat(&Token::RParen)?;
        Ok((a, b))
    }

    fn dist_one_arg(&mut self) -> Result<Expr, ParseError> {
        self.eat(&Token::LParen)?;
        let a = self.expr()?;
        self.eat(&Token::RParen)?;
        Ok(a)
    }

    fn atom_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Nat(n) => {
                self.advance();
                Ok(Expr::Nat(n))
            }
            Token::Real(r) => {
                self.advance();
                Ok(Expr::Real(r))
            }
            Token::LParen => {
                self.advance();
                if matches!(self.peek(), Token::RParen) {
                    self.advance();
                    return Ok(Expr::Triv);
                }
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(s) => match s.as_str() {
                "true" => {
                    self.advance();
                    Ok(Expr::Bool(true))
                }
                "false" => {
                    self.advance();
                    Ok(Expr::Bool(false))
                }
                "if" => {
                    self.advance();
                    let c = self.expr()?;
                    self.eat_keyword("then")?;
                    let a = self.expr()?;
                    self.eat_keyword("else")?;
                    let b = self.expr()?;
                    Ok(Expr::If(Box::new(c), Box::new(a), Box::new(b)))
                }
                "let" => {
                    self.advance();
                    let x = self.ident()?;
                    self.eat(&Token::Eq)?;
                    let e1 = self.expr()?;
                    self.eat_keyword("in")?;
                    let e2 = self.expr()?;
                    Ok(Expr::Let(x, Box::new(e1), Box::new(e2)))
                }
                "fn" => {
                    self.advance();
                    self.eat(&Token::LParen)?;
                    let x = self.ident()?;
                    self.eat(&Token::Colon)?;
                    let ty = self.base_type()?;
                    self.eat(&Token::RParen)?;
                    self.eat(&Token::FatArrow)?;
                    let body = self.expr()?;
                    Ok(Expr::Lam(x, ty, Box::new(body)))
                }
                "exp" | "ln" | "sqrt" | "real" => {
                    self.advance();
                    let op = match s.as_str() {
                        "exp" => UnOp::Exp,
                        "ln" => UnOp::Ln,
                        "sqrt" => UnOp::Sqrt,
                        _ => UnOp::ToReal,
                    };
                    let e = self.dist_one_arg()?;
                    Ok(Expr::unop(op, e))
                }
                "Ber" => {
                    self.advance();
                    Ok(Expr::Dist(DistExpr::Bernoulli(Box::new(
                        self.dist_one_arg()?,
                    ))))
                }
                "Unif" => {
                    self.advance();
                    Ok(Expr::Dist(DistExpr::Uniform))
                }
                "Beta" => {
                    self.advance();
                    let (a, b) = self.dist_two_args()?;
                    Ok(Expr::Dist(DistExpr::Beta(Box::new(a), Box::new(b))))
                }
                "Gamma" => {
                    self.advance();
                    let (a, b) = self.dist_two_args()?;
                    Ok(Expr::Dist(DistExpr::Gamma(Box::new(a), Box::new(b))))
                }
                "Normal" => {
                    self.advance();
                    let (a, b) = self.dist_two_args()?;
                    Ok(Expr::Dist(DistExpr::Normal(Box::new(a), Box::new(b))))
                }
                "Cat" => {
                    self.advance();
                    self.eat(&Token::LParen)?;
                    let mut args = Vec::new();
                    loop {
                        args.push(self.expr()?);
                        if matches!(self.peek(), Token::Comma | Token::Semi) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                    self.eat(&Token::RParen)?;
                    Ok(Expr::Dist(DistExpr::Categorical(args)))
                }
                "Geo" => {
                    self.advance();
                    Ok(Expr::Dist(DistExpr::Geometric(Box::new(
                        self.dist_one_arg()?,
                    ))))
                }
                "Pois" => {
                    self.advance();
                    Ok(Expr::Dist(DistExpr::Poisson(Box::new(
                        self.dist_one_arg()?,
                    ))))
                }
                _ => {
                    let name = self.ident()?;
                    if matches!(self.peek(), Token::LParen) {
                        self.advance();
                        let arg = self.expr()?;
                        self.eat(&Token::RParen)?;
                        Ok(Expr::App(Box::new(Expr::Var(name)), Box::new(arg)))
                    } else {
                        Ok(Expr::Var(name))
                    }
                }
            },
            other => Err(self.error(format!("expected an expression, found '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_expressions() {
        assert_eq!(parse_expr("1 + 2 * 3").unwrap(), {
            Expr::binop(
                BinOp::Add,
                Expr::Nat(1),
                Expr::binop(BinOp::Mul, Expr::Nat(2), Expr::Nat(3)),
            )
        });
        assert_eq!(
            parse_expr("v < 2.0").unwrap(),
            Expr::binop(BinOp::Lt, Expr::var("v"), Expr::Real(2.0))
        );
        assert_eq!(parse_expr("()").unwrap(), Expr::Triv);
        assert_eq!(
            parse_expr("-1.0").unwrap(),
            Expr::unop(UnOp::Neg, Expr::Real(1.0))
        );
    }

    #[test]
    fn parse_distribution_expressions() {
        assert_eq!(parse_expr("Unif").unwrap(), Expr::Dist(DistExpr::Uniform));
        let g = parse_expr("Gamma(2.0, 1.0)").unwrap();
        assert!(matches!(g, Expr::Dist(DistExpr::Gamma(..))));
        let c = parse_expr("Cat(1.0, 2.0, 3.0)").unwrap();
        match c {
            Expr::Dist(DistExpr::Categorical(args)) => assert_eq!(args.len(), 3),
            _ => panic!("expected categorical"),
        }
    }

    #[test]
    fn parse_if_let_and_lambda_expressions() {
        let e = parse_expr("if b then 1.0 else 2.0").unwrap();
        assert!(matches!(e, Expr::If(..)));
        let e = parse_expr("let x = 2.0 in x * x").unwrap();
        assert!(matches!(e, Expr::Let(..)));
        let e = parse_expr("fn (x : real) => x + 1.0").unwrap();
        assert!(matches!(e, Expr::Lam(..)));
        let e = parse_expr("f(3.0)").unwrap();
        assert!(matches!(e, Expr::App(..)));
        let e = parse_expr("exp(-1.0 * lambda)").unwrap();
        assert!(matches!(e, Expr::UnOp(UnOp::Exp, _)));
    }

    #[test]
    fn parse_fig5_model() {
        let src = r#"
            proc Model() : real consume latent provide obs {
              let v <- sample recv latent (Gamma(2.0, 1.0));
              if send latent (v < 2.0) {
                let _ <- sample send obs (Normal(-1.0, 1.0));
                return v
              } else {
                let m <- sample recv latent (Beta(3.0, 1.0));
                let _ <- sample send obs (Normal(m, 1.0));
                return v
              }
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.procs.len(), 1);
        let model = prog.proc_named("Model").unwrap();
        assert_eq!(model.ret_ty, BaseType::Real);
        assert_eq!(model.consumes, Some("latent".into()));
        assert_eq!(model.provides, Some("obs".into()));
        // body: bind(sample; v. branch)
        match &model.body {
            Cmd::Bind { var, first, rest } => {
                assert_eq!(var.as_str(), "v");
                assert!(matches!(**first, Cmd::Sample { dir: Dir::Recv, .. }));
                assert!(matches!(**rest, Cmd::Branch { dir: Dir::Send, .. }));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn parse_fig5_guide() {
        let src = r#"
            proc Guide1() provide latent {
              let v <- sample send latent (Gamma(1.0, 1.0));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Unif);
                return ()
              }
            }
        "#;
        let prog = parse_program(src).unwrap();
        let guide = prog.proc_named("Guide1").unwrap();
        assert_eq!(guide.ret_ty, BaseType::Unit);
        assert_eq!(guide.consumes, None);
        assert_eq!(guide.provides, Some("latent".into()));
        match &guide.body {
            Cmd::Bind { rest, .. } => match rest.as_ref() {
                Cmd::Branch { dir, pred, .. } => {
                    assert_eq!(*dir, Dir::Recv);
                    assert!(pred.is_none());
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_recursive_pcfg() {
        let src = r#"
            proc Pcfg() : real consume latent {
              let k <- sample recv latent (Beta(3.0, 1.0));
              call PcfgGen(k)
            }
            proc PcfgGen(k : ureal) : real consume latent {
              let u <- sample recv latent (Unif);
              if send latent (u < k) {
                let v <- sample recv latent (Normal(0.0, 1.0));
                return v
              } else {
                let lhs <- call PcfgGen(k);
                let rhs <- call PcfgGen(k);
                return lhs + rhs
              }
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.procs.len(), 2);
        let gen = prog.proc_named("PcfgGen").unwrap();
        assert_eq!(gen.params.len(), 1);
        assert_eq!(gen.params[0].1, BaseType::UnitInterval);
    }

    #[test]
    fn parse_anonymous_sequencing() {
        let src = r#"
            proc P() provide obs {
              sample send obs (Normal(0.0, 1.0));
              return ()
            }
        "#;
        let prog = parse_program(src).unwrap();
        match &prog.procs[0].body {
            Cmd::Bind { var, .. } => assert_eq!(var.as_str(), "_"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_multi_param_proc_and_type_annotations() {
        let src = r#"
            proc Guide2(t1 : preal, t2 : preal, t3 : preal, t4 : preal) provide latent {
              let v <- sample send latent (Gamma(t1, t2));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Beta(t3, t4));
                return ()
              }
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.procs[0].params.len(), 4);
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = parse_program("proc P( { }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("parse error"));
        assert!(parse_program("proc 3() {}").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("Beta(1.0)").is_err());
        assert!(parse_expr("if x then 1.0").is_err());
    }

    #[test]
    fn keywords_cannot_be_identifiers() {
        assert!(parse_program("proc sample() { return () }").is_err());
    }

    #[test]
    fn parse_errors_carry_stable_codes() {
        let err = parse_program("proc P( { }").unwrap_err();
        assert_eq!(err.code(), code::UNEXPECTED_TOKEN);
        let err = parse_program("proc P() { return 1 @ 2 }").unwrap_err();
        assert_eq!(err.code(), code::LEX);
        assert!(err.position().0 >= 1);
    }

    #[test]
    fn deep_expression_nesting_is_rejected_not_crashed() {
        let depth = 4 * MAX_PARSE_DEPTH;
        let src = format!("{}1.0{}", "(".repeat(depth), ")".repeat(depth));
        let err = parse_expr(&src).unwrap_err();
        assert_eq!(err.code(), code::DEPTH);
        assert!(err.to_string().contains("nesting"));
    }

    #[test]
    fn deep_unary_and_block_nesting_are_rejected() {
        let minus = format!("{}1.0", "-".repeat(4 * MAX_PARSE_DEPTH));
        assert_eq!(parse_expr(&minus).unwrap_err().code(), code::DEPTH);
        let blocks = format!(
            "proc P() {{ {} return () {} }}",
            "{".repeat(4 * MAX_PARSE_DEPTH),
            "}".repeat(4 * MAX_PARSE_DEPTH)
        );
        assert_eq!(parse_program(&blocks).unwrap_err().code(), code::DEPTH);
    }

    #[test]
    fn shallow_nesting_still_parses() {
        let depth = 32;
        let src = format!("{}1.0{}", "(".repeat(depth), ")".repeat(depth));
        assert!(parse_expr(&src).is_ok());
    }

    #[test]
    fn long_flat_sequences_do_not_hit_the_depth_fence() {
        let body = "sample send obs (Normal(0.0, 1.0));".repeat(2000);
        let src = format!("proc P() provide obs {{ {body} return () }}");
        assert!(parse_program(&src).is_ok());
    }

    #[test]
    fn procs_record_their_source_position() {
        let prog = parse_program("proc P() { return () }").unwrap();
        assert_eq!(prog.procs[0].pos, (1, 1));
        let prog = parse_program("\n\n  proc Q() { return () }").unwrap();
        assert_eq!(prog.procs[0].pos, (3, 3));
    }

    #[test]
    fn nat_bracket_type() {
        let src = "proc P(k : nat[4]) { return () }";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.procs[0].params[0].1, BaseType::FinNat(4));
    }
}
