//! **ppl_dist** — primitive probability distributions for the guide-types
//! PPL (*Sound Probabilistic Inference via Guide Types*, PLDI 2021).
//!
//! Every inference engine in this workspace bottoms out here: coroutine
//! `sample` commands draw from and score against a [`Distribution`], the
//! guide-type system classifies supports via [`DistKind`], and guidance
//! traces carry scalar [`Sample`] payloads.
//!
//! * [`Distribution`] — the eight primitive distributions of the paper's
//!   calculus (Fig. 7): `Normal`, `Ber`, `Beta`, `Gamma`, `Geo`, `Cat`,
//!   `Pois`, `Unif`, with exact-support log-densities and deterministic
//!   samplers;
//! * [`Sample`] — a scalar sample value (`Real` / `Bool` / `Nat`);
//! * [`DistKind`] — the support-kind lattice used to certify absolute
//!   continuity (`real`, `preal`, `ureal`, `bool`, `nat`, `nat[n]`);
//! * [`rng`] — a seedable, deterministic PCG32 generator;
//! * [`special`] — `ln Γ`, `ln B`, and log-sum-exp;
//! * [`stats`] — weight normalisation, effective sample size, histograms.
//!
//! # Example
//!
//! ```
//! use ppl_dist::{Distribution, Sample, rng::Pcg32};
//!
//! let d = Distribution::gamma(2.0, 1.0)?;
//! let mut rng = Pcg32::seed_from_u64(0);
//! let x = d.sample(&mut rng);
//! assert!(x > 0.0);
//! assert!(d.log_density(&Sample::Real(x)).is_finite());
//! assert_eq!(d.log_density(&Sample::Real(-1.0)), f64::NEG_INFINITY);
//! # Ok::<(), ppl_dist::DistError>(())
//! ```

pub mod rng;
pub mod special;
pub mod stats;

use rng::Pcg32;
use special::{ln_gamma, log_beta};
use std::f64::consts::PI;
use std::fmt;

/// A scalar sample value exchanged on a guidance channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sample {
    /// A Boolean draw (Bernoulli).
    Bool(bool),
    /// A real-valued draw (Normal, Gamma, Beta, Uniform).
    Real(f64),
    /// A natural-number draw (Geometric, Poisson, Categorical).
    Nat(u64),
}

impl Sample {
    /// A numeric view: reals as themselves, naturals converted, and
    /// Booleans as `0` / `1`.
    pub fn as_f64(&self) -> f64 {
        match self {
            Sample::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Sample::Real(r) => *r,
            Sample::Nat(n) => *n as f64,
        }
    }

    /// The Boolean payload, if this is a Boolean sample.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Sample::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The natural-number payload, if this is a natural sample.
    pub fn as_nat(&self) -> Option<u64> {
        match self {
            Sample::Nat(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sample::Bool(b) => write!(f, "{b}"),
            Sample::Real(r) => write!(f, "{r}"),
            Sample::Nat(n) => write!(f, "{n}"),
        }
    }
}

/// The support kind of a distribution: the refinement of its carrier type
/// used by the guide-type system to decide whether a guide's proposal is
/// absolutely continuous with respect to the model's prior.
///
/// The real-valued kinds form the chain `UnitInterval ⊂ PosReal ⊂ Real`
/// and the naturals the chain `FinNat(n) ⊂ Nat`; compatibility requires
/// *equal* kinds (Theorem 5.2 needs equal supports, not inclusion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistKind {
    /// The whole real line `ℝ` (Normal).
    Real,
    /// The positive reals `ℝ+` (Gamma).
    PosReal,
    /// The open unit interval `ℝ(0,1)` (Beta, Uniform).
    UnitInterval,
    /// The Booleans `𝟚` (Bernoulli).
    Bool,
    /// The naturals `ℕ` (Geometric, Poisson).
    Nat,
    /// The finite naturals `ℕ_n = {0, …, n−1}` (Categorical over `n`
    /// weights).
    FinNat(usize),
}

impl fmt::Display for DistKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistKind::Real => write!(f, "real"),
            DistKind::PosReal => write!(f, "preal"),
            DistKind::UnitInterval => write!(f, "ureal"),
            DistKind::Bool => write!(f, "bool"),
            DistKind::Nat => write!(f, "nat"),
            DistKind::FinNat(n) => write!(f, "nat[{n}]"),
        }
    }
}

/// An error raised when a distribution is constructed with parameters
/// outside its domain.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A parameter violated its domain constraint.
    InvalidParameter {
        /// The distribution being constructed.
        distribution: &'static str,
        /// What went wrong.
        message: String,
    },
}

impl DistError {
    fn invalid(distribution: &'static str, message: impl Into<String>) -> DistError {
        DistError::InvalidParameter {
            distribution,
            message: message.into(),
        }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidParameter {
                distribution,
                message,
            } => write!(f, "invalid {distribution} parameter: {message}"),
        }
    }
}

impl std::error::Error for DistError {}

/// Smallest positive value returned by the positive-support samplers, so
/// that a draw never collapses onto the boundary of an open support.
const POSITIVE_FLOOR: f64 = 1e-300;

/// How far inside `(0, 1)` unit-interval draws are clamped.
const UNIT_MARGIN: f64 = 1e-15;

/// A primitive probability distribution.
///
/// Constructors validate their parameters and return a [`DistError`] on
/// domain violations; [`Distribution::uniform`] is the only parameter-free
/// (hence infallible) constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// `Normal(μ, σ)` over `ℝ`.
    Normal {
        /// Mean `μ`.
        mean: f64,
        /// Standard deviation `σ > 0`.
        std_dev: f64,
    },
    /// `Ber(p)` over `𝟚`.
    Bernoulli {
        /// Success probability `p ∈ [0, 1]`.
        p: f64,
    },
    /// `Beta(α, β)` over `ℝ(0,1)`.
    Beta {
        /// Shape `α > 0`.
        alpha: f64,
        /// Shape `β > 0`.
        beta: f64,
    },
    /// `Gamma(α, β)` (shape–rate) over `ℝ+`.
    Gamma {
        /// Shape `α > 0`.
        shape: f64,
        /// Rate `β > 0`.
        rate: f64,
    },
    /// `Geo(p)` over `ℕ`: the number of failures before the first success.
    Geometric {
        /// Success probability `p ∈ (0, 1]`.
        p: f64,
    },
    /// `Cat(w₀, …, w_{n−1})` over `ℕ_n`.
    Categorical {
        /// Unnormalised positive weights, shared so that cloning a
        /// categorical distribution (e.g. into a coroutine suspension on
        /// the particle hot loop) is a reference-count bump, never a
        /// buffer copy.
        weights: std::sync::Arc<[f64]>,
    },
    /// `Pois(λ)` over `ℕ`.
    Poisson {
        /// Rate `λ > 0`.
        rate: f64,
    },
    /// `Unif` over `ℝ(0,1)`.
    Uniform,
}

impl Distribution {
    /// `Normal(mean, std_dev)`.
    ///
    /// # Errors
    ///
    /// Rejects a non-finite mean and a non-positive or non-finite standard
    /// deviation.
    pub fn normal(mean: f64, std_dev: f64) -> Result<Distribution, DistError> {
        if !mean.is_finite() {
            return Err(DistError::invalid(
                "Normal",
                format!("mean must be finite, got {mean}"),
            ));
        }
        if !(std_dev > 0.0 && std_dev.is_finite()) {
            return Err(DistError::invalid(
                "Normal",
                format!("standard deviation must be positive and finite, got {std_dev}"),
            ));
        }
        Ok(Distribution::Normal { mean, std_dev })
    }

    /// `Ber(p)`.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]`.
    pub fn bernoulli(p: f64) -> Result<Distribution, DistError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::invalid(
                "Bernoulli",
                format!("probability must lie in [0, 1], got {p}"),
            ));
        }
        Ok(Distribution::Bernoulli { p })
    }

    /// `Beta(alpha, beta)`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite shapes.
    pub fn beta(alpha: f64, beta: f64) -> Result<Distribution, DistError> {
        for (name, v) in [("alpha", alpha), ("beta", beta)] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(DistError::invalid(
                    "Beta",
                    format!("{name} must be positive and finite, got {v}"),
                ));
            }
        }
        Ok(Distribution::Beta { alpha, beta })
    }

    /// `Gamma(shape, rate)` in the shape–rate parameterisation.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite parameters.
    pub fn gamma(shape: f64, rate: f64) -> Result<Distribution, DistError> {
        for (name, v) in [("shape", shape), ("rate", rate)] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(DistError::invalid(
                    "Gamma",
                    format!("{name} must be positive and finite, got {v}"),
                ));
            }
        }
        Ok(Distribution::Gamma { shape, rate })
    }

    /// `Geo(p)`: number of failures before the first success.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `(0, 1]` (at `p = 0` the distribution
    /// has no mass anywhere).
    pub fn geometric(p: f64) -> Result<Distribution, DistError> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(DistError::invalid(
                "Geometric",
                format!("probability must lie in (0, 1], got {p}"),
            ));
        }
        Ok(Distribution::Geometric { p })
    }

    /// `Cat(weights)` over `{0, …, weights.len() − 1}`.
    ///
    /// # Errors
    ///
    /// Rejects an empty weight vector and non-positive or non-finite
    /// weights.
    pub fn categorical(weights: Vec<f64>) -> Result<Distribution, DistError> {
        if weights.is_empty() {
            return Err(DistError::invalid(
                "Categorical",
                "needs at least one weight",
            ));
        }
        for (i, &w) in weights.iter().enumerate() {
            if !(w > 0.0 && w.is_finite()) {
                return Err(DistError::invalid(
                    "Categorical",
                    format!("weight #{i} must be positive and finite, got {w}"),
                ));
            }
        }
        Ok(Distribution::Categorical {
            weights: weights.into(),
        })
    }

    /// `Pois(rate)`.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive or non-finite rate.
    pub fn poisson(rate: f64) -> Result<Distribution, DistError> {
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(DistError::invalid(
                "Poisson",
                format!("rate must be positive and finite, got {rate}"),
            ));
        }
        Ok(Distribution::Poisson { rate })
    }

    /// `Unif`, the uniform distribution on the open unit interval.
    pub fn uniform() -> Distribution {
        Distribution::Uniform
    }

    /// The support kind of this distribution.
    pub fn kind(&self) -> DistKind {
        match self {
            Distribution::Normal { .. } => DistKind::Real,
            Distribution::Bernoulli { .. } => DistKind::Bool,
            Distribution::Beta { .. } | Distribution::Uniform => DistKind::UnitInterval,
            Distribution::Gamma { .. } => DistKind::PosReal,
            Distribution::Geometric { .. } | Distribution::Poisson { .. } => DistKind::Nat,
            Distribution::Categorical { weights } => DistKind::FinNat(weights.len()),
        }
    }

    /// True if the sample has the right carrier *and* lies in the support.
    ///
    /// The check is strict about carriers: a natural-number sample is never
    /// in the support of a real-valued distribution, even when its numeric
    /// value would be (this is what makes an unsound guide's draws score to
    /// weight zero rather than being silently coerced).
    pub fn supports(&self, sample: &Sample) -> bool {
        match (self, sample) {
            (Distribution::Normal { .. }, Sample::Real(x)) => x.is_finite(),
            (Distribution::Bernoulli { .. }, Sample::Bool(_)) => true,
            (Distribution::Beta { .. } | Distribution::Uniform, Sample::Real(x)) => {
                *x > 0.0 && *x < 1.0
            }
            (Distribution::Gamma { .. }, Sample::Real(x)) => *x > 0.0 && x.is_finite(),
            (Distribution::Geometric { .. } | Distribution::Poisson { .. }, Sample::Nat(_)) => true,
            (Distribution::Categorical { weights }, Sample::Nat(k)) => {
                (*k as usize) < weights.len()
            }
            _ => false,
        }
    }

    /// The log-density (continuous) or log-mass (discrete) of a sample;
    /// `-∞` for samples outside the support or with the wrong carrier.
    pub fn log_density(&self, sample: &Sample) -> f64 {
        if !self.supports(sample) {
            return f64::NEG_INFINITY;
        }
        match (self, sample) {
            (Distribution::Normal { mean, std_dev }, Sample::Real(x)) => {
                let z = (x - mean) / std_dev;
                -0.5 * z * z - std_dev.ln() - 0.5 * (2.0 * PI).ln()
            }
            (Distribution::Bernoulli { p }, Sample::Bool(b)) => {
                if *b {
                    p.ln()
                } else {
                    (1.0 - p).ln()
                }
            }
            (Distribution::Beta { alpha, beta }, Sample::Real(x)) => {
                (alpha - 1.0) * x.ln() + (beta - 1.0) * (1.0 - x).ln() - log_beta(*alpha, *beta)
            }
            (Distribution::Gamma { shape, rate }, Sample::Real(x)) => {
                shape * rate.ln() - ln_gamma(*shape) + (shape - 1.0) * x.ln() - rate * x
            }
            (Distribution::Geometric { p }, Sample::Nat(k)) => {
                // P(k) = (1 − p)^k · p; written to avoid 0 · (−∞) at p = 1.
                if *k == 0 {
                    p.ln()
                } else {
                    *k as f64 * (1.0 - p).ln() + p.ln()
                }
            }
            (Distribution::Categorical { weights }, Sample::Nat(k)) => {
                let total: f64 = weights.iter().sum();
                (weights[*k as usize] / total).ln()
            }
            (Distribution::Poisson { rate }, Sample::Nat(k)) => {
                *k as f64 * rate.ln() - rate - ln_gamma(*k as f64 + 1.0)
            }
            (Distribution::Uniform, Sample::Real(_)) => 0.0,
            _ => unreachable!("supports() filtered mismatched carriers"),
        }
    }

    /// [`Distribution::log_density`] — the Pyro-style name, kept as an
    /// alias for code written against that convention.
    pub fn log_prob(&self, sample: &Sample) -> f64 {
        self.log_density(sample)
    }

    /// The log-density of a numeric value: reals are scored directly,
    /// naturals and Booleans after exact conversion (`-∞` when the value
    /// does not denote an element of the carrier).
    pub fn log_density_f64(&self, x: f64) -> f64 {
        match self.kind() {
            DistKind::Real | DistKind::PosReal | DistKind::UnitInterval => {
                self.log_density(&Sample::Real(x))
            }
            DistKind::Bool => {
                if x == 0.0 {
                    self.log_density(&Sample::Bool(false))
                } else if x == 1.0 {
                    self.log_density(&Sample::Bool(true))
                } else {
                    f64::NEG_INFINITY
                }
            }
            DistKind::Nat | DistKind::FinNat(_) => {
                if x.is_finite() && x >= 0.0 && x.fract() == 0.0 {
                    self.log_density(&Sample::Nat(x as u64))
                } else {
                    f64::NEG_INFINITY
                }
            }
        }
    }

    /// The density (or mass) of a sample: `exp` of the log-density.
    pub fn density(&self, sample: &Sample) -> f64 {
        self.log_density(sample).exp()
    }

    /// Draws a sample as a [`Sample`] with the distribution's carrier.
    pub fn draw(&self, rng: &mut Pcg32) -> Sample {
        match self {
            Distribution::Normal { mean, std_dev } => {
                Sample::Real(mean + std_dev * standard_normal(rng))
            }
            Distribution::Bernoulli { p } => Sample::Bool(rng.next_f64() < *p),
            Distribution::Beta { alpha, beta } => {
                let x = standard_gamma(*alpha, rng);
                let y = standard_gamma(*beta, rng);
                Sample::Real((x / (x + y)).clamp(UNIT_MARGIN, 1.0 - UNIT_MARGIN))
            }
            Distribution::Gamma { shape, rate } => {
                Sample::Real((standard_gamma(*shape, rng) / rate).max(POSITIVE_FLOOR))
            }
            Distribution::Geometric { p } => {
                if *p >= 1.0 {
                    return Sample::Nat(0);
                }
                // k = ⌊ln u / ln(1 − p)⌋ for u ~ Unif(0, 1) is geometric.
                let k = (rng.next_open01().ln() / (1.0 - p).ln()).floor();
                Sample::Nat(k as u64)
            }
            Distribution::Categorical { weights } => {
                let total: f64 = weights.iter().sum();
                let mut target = rng.next_f64() * total;
                for (i, &w) in weights.iter().enumerate() {
                    if target < w {
                        return Sample::Nat(i as u64);
                    }
                    target -= w;
                }
                Sample::Nat(weights.len() as u64 - 1)
            }
            Distribution::Poisson { rate } => Sample::Nat(poisson_draw(*rate, rng)),
            Distribution::Uniform => Sample::Real(rng.next_open01()),
        }
    }

    /// Draws a sample and returns its numeric view (see [`Sample::as_f64`]).
    pub fn sample(&self, rng: &mut Pcg32) -> f64 {
        self.draw(rng).as_f64()
    }

    /// Scores a slice of numeric values, filling
    /// `out[i] = self.log_density_f64(xs[i])` — bit-for-bit identical to the
    /// scalar call, element by element.
    ///
    /// The distribution variant is matched once and every loop-invariant
    /// subexpression of the scalar formula (`ln σ`, `ln B(α, β)`, the
    /// categorical weight total, …) is hoisted outside a straight-line loop
    /// over `&[f64]`, so the block executor pays the parameter maths once per
    /// site instead of once per particle and LLVM can autovectorise the rest.
    /// Hoisting never changes results: the per-element operations keep the
    /// scalar formula's exact order and associativity.
    ///
    /// # Panics
    ///
    /// Panics when `xs` and `out` have different lengths.
    pub fn log_density_batch(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "log_density_batch length mismatch");
        match self {
            Distribution::Normal { mean, std_dev } => {
                let ln_sd = std_dev.ln();
                let half_ln_two_pi = 0.5 * (2.0 * PI).ln();
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = if x.is_finite() {
                        let z = (x - mean) / std_dev;
                        -0.5 * z * z - ln_sd - half_ln_two_pi
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
            Distribution::Bernoulli { p } => {
                let ln_p = p.ln();
                let ln_q = (1.0 - p).ln();
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = if x == 1.0 {
                        ln_p
                    } else if x == 0.0 {
                        ln_q
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
            Distribution::Beta { alpha, beta } => {
                let am1 = alpha - 1.0;
                let bm1 = beta - 1.0;
                let lb = log_beta(*alpha, *beta);
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = if x > 0.0 && x < 1.0 {
                        am1 * x.ln() + bm1 * (1.0 - x).ln() - lb
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
            Distribution::Gamma { shape, rate } => {
                let norm = shape * rate.ln() - ln_gamma(*shape);
                let sm1 = shape - 1.0;
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = if x > 0.0 && x.is_finite() {
                        norm + sm1 * x.ln() - rate * x
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
            Distribution::Geometric { p } => {
                let ln_p = p.ln();
                let ln_q = (1.0 - p).ln();
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = if x.is_finite() && x >= 0.0 && x.fract() == 0.0 {
                        let k = x as u64;
                        if k == 0 {
                            ln_p
                        } else {
                            k as f64 * ln_q + ln_p
                        }
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
            Distribution::Categorical { weights } => {
                let total: f64 = weights.iter().sum();
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = if x.is_finite() && x >= 0.0 && x.fract() == 0.0 {
                        let k = x as u64;
                        if (k as usize) < weights.len() {
                            (weights[k as usize] / total).ln()
                        } else {
                            f64::NEG_INFINITY
                        }
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
            Distribution::Poisson { rate } => {
                let ln_rate = rate.ln();
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = if x.is_finite() && x >= 0.0 && x.fract() == 0.0 {
                        let k = x as u64;
                        k as f64 * ln_rate - rate - ln_gamma(k as f64 + 1.0)
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
            Distribution::Uniform => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = if x > 0.0 && x < 1.0 {
                        0.0
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
        }
    }

    /// Draws one sample per generator, filling `out[i]` with exactly the
    /// [`Sample`] that `self.draw(&mut rngs[i])` would produce (each lane's
    /// generator advances identically to the scalar call).
    ///
    /// Like [`Distribution::log_density_batch`], the variant match and the
    /// loop-invariant parameter work (`ln(1 − p)`, the categorical total, …)
    /// happen once per call rather than once per lane.
    ///
    /// # Panics
    ///
    /// Panics when `rngs` and `out` have different lengths.
    pub fn sample_batch(&self, rngs: &mut [Pcg32], out: &mut [Sample]) {
        assert_eq!(rngs.len(), out.len(), "sample_batch length mismatch");
        match self {
            Distribution::Normal { mean, std_dev } => {
                for (o, rng) in out.iter_mut().zip(rngs) {
                    *o = Sample::Real(mean + std_dev * standard_normal(rng));
                }
            }
            Distribution::Bernoulli { p } => {
                for (o, rng) in out.iter_mut().zip(rngs) {
                    *o = Sample::Bool(rng.next_f64() < *p);
                }
            }
            Distribution::Beta { alpha, beta } => {
                for (o, rng) in out.iter_mut().zip(rngs) {
                    let x = standard_gamma(*alpha, rng);
                    let y = standard_gamma(*beta, rng);
                    *o = Sample::Real((x / (x + y)).clamp(UNIT_MARGIN, 1.0 - UNIT_MARGIN));
                }
            }
            Distribution::Gamma { shape, rate } => {
                for (o, rng) in out.iter_mut().zip(rngs) {
                    *o = Sample::Real((standard_gamma(*shape, rng) / rate).max(POSITIVE_FLOOR));
                }
            }
            Distribution::Geometric { p } => {
                if *p >= 1.0 {
                    // The scalar draw returns 0 without consuming randomness.
                    out.fill(Sample::Nat(0));
                    return;
                }
                let ln_q = (1.0 - p).ln();
                for (o, rng) in out.iter_mut().zip(rngs) {
                    let k = (rng.next_open01().ln() / ln_q).floor();
                    *o = Sample::Nat(k as u64);
                }
            }
            Distribution::Categorical { weights } => {
                let total: f64 = weights.iter().sum();
                for (o, rng) in out.iter_mut().zip(rngs) {
                    let mut target = rng.next_f64() * total;
                    *o = Sample::Nat(weights.len() as u64 - 1);
                    for (i, &w) in weights.iter().enumerate() {
                        if target < w {
                            *o = Sample::Nat(i as u64);
                            break;
                        }
                        target -= w;
                    }
                }
            }
            Distribution::Poisson { rate } => {
                for (o, rng) in out.iter_mut().zip(rngs) {
                    *o = Sample::Nat(poisson_draw(*rate, rng));
                }
            }
            Distribution::Uniform => {
                for (o, rng) in out.iter_mut().zip(rngs) {
                    *o = Sample::Real(rng.next_open01());
                }
            }
        }
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distribution::Normal { mean, std_dev } => write!(f, "Normal({mean}, {std_dev})"),
            Distribution::Bernoulli { p } => write!(f, "Ber({p})"),
            Distribution::Beta { alpha, beta } => write!(f, "Beta({alpha}, {beta})"),
            Distribution::Gamma { shape, rate } => write!(f, "Gamma({shape}, {rate})"),
            Distribution::Geometric { p } => write!(f, "Geo({p})"),
            Distribution::Categorical { weights } => {
                write!(f, "Cat(")?;
                for (i, w) in weights.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                write!(f, ")")
            }
            Distribution::Poisson { rate } => write!(f, "Pois({rate})"),
            Distribution::Uniform => write!(f, "Unif"),
        }
    }
}

/// A standard-normal draw via the Box–Muller transform.
fn standard_normal(rng: &mut Pcg32) -> f64 {
    let u1 = rng.next_open01();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// A `Gamma(shape, 1)` draw via Marsaglia–Tsang's squeeze method, with the
/// standard `shape < 1` boost.
fn standard_gamma(shape: f64, rng: &mut Pcg32) -> f64 {
    if shape < 1.0 {
        // Γ(α) = Γ(α + 1) · U^{1/α}.
        let boost = rng.next_open01().powf(1.0 / shape);
        return standard_gamma(shape + 1.0, rng) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.next_open01();
        // Cheap squeeze first, exact acceptance second.
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// A Poisson draw: Knuth's product-of-uniforms method, applied in chunks of
/// rate ≤ 30 (Poisson rates are additive) so the `exp(−λ)` threshold never
/// underflows for large rates.
fn poisson_draw(rate: f64, rng: &mut Pcg32) -> u64 {
    const CHUNK: f64 = 30.0;
    let mut remaining = rate;
    let mut count = 0u64;
    while remaining > 0.0 {
        let step = remaining.min(CHUNK);
        let threshold = (-step).exp();
        let mut product = rng.next_f64();
        while product > threshold {
            count += 1;
            product *= rng.next_f64();
        }
        remaining -= step;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Pcg32 {
        Pcg32::seed_from_u64(0xD157)
    }

    const TOL: f64 = 1e-12;

    // ---------------------------------------------------- closed-form checks

    #[test]
    fn normal_log_density_matches_closed_form() {
        let d = Distribution::normal(0.0, 1.0).unwrap();
        // φ(0) = 1/√(2π).
        assert!((d.log_density_f64(0.0) + 0.5 * (2.0 * PI).ln()).abs() < TOL);
        // φ(1) adds −1/2.
        assert!((d.log_density_f64(1.0) + 0.5 + 0.5 * (2.0 * PI).ln()).abs() < TOL);
        // Scaling: Normal(3, 2) at 3 is φ(0)/2.
        let d = Distribution::normal(3.0, 2.0).unwrap();
        assert!((d.log_density_f64(3.0) + 2f64.ln() + 0.5 * (2.0 * PI).ln()).abs() < TOL);
        assert_eq!(d.log_density_f64(f64::INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn bernoulli_log_density_matches_closed_form() {
        let d = Distribution::bernoulli(0.3).unwrap();
        assert!((d.log_density(&Sample::Bool(true)) - 0.3f64.ln()).abs() < TOL);
        assert!((d.log_density(&Sample::Bool(false)) - 0.7f64.ln()).abs() < TOL);
        // Degenerate endpoints still score correctly.
        let sure = Distribution::bernoulli(1.0).unwrap();
        assert_eq!(sure.log_density(&Sample::Bool(true)), 0.0);
        assert_eq!(sure.log_density(&Sample::Bool(false)), f64::NEG_INFINITY);
    }

    #[test]
    fn beta_log_density_matches_closed_form() {
        // Beta(3, 1) has density 3x² on (0, 1).
        let d = Distribution::beta(3.0, 1.0).unwrap();
        assert!((d.log_density_f64(0.9) - (3.0 * 0.81f64).ln()).abs() < 1e-10);
        // Beta(1, 1) is uniform.
        let flat = Distribution::beta(1.0, 1.0).unwrap();
        assert!(flat.log_density_f64(0.42).abs() < 1e-10);
        // Beta(2, 2) has density 6x(1−x).
        let d = Distribution::beta(2.0, 2.0).unwrap();
        assert!((d.log_density_f64(0.25) - (6.0 * 0.25 * 0.75f64).ln()).abs() < 1e-10);
        assert_eq!(d.log_density_f64(0.0), f64::NEG_INFINITY);
        assert_eq!(d.log_density_f64(1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn gamma_log_density_matches_closed_form() {
        // Gamma(1, 1) is Exp(1): log f(x) = −x.
        let exp1 = Distribution::gamma(1.0, 1.0).unwrap();
        assert!((exp1.log_density_f64(3.0) + 3.0).abs() < 1e-10);
        // Gamma(2, 1): f(x) = x e^{−x}.
        let d = Distribution::gamma(2.0, 1.0).unwrap();
        assert!((d.log_density_f64(2.5) - (2.5f64.ln() - 2.5)).abs() < 1e-10);
        // Rate scaling: Gamma(1, 2) is Exp(2).
        let exp2 = Distribution::gamma(1.0, 2.0).unwrap();
        assert!((exp2.log_density_f64(1.0) - (2f64.ln() - 2.0)).abs() < 1e-10);
        assert_eq!(d.log_density_f64(-1.0), f64::NEG_INFINITY);
        assert_eq!(d.log_density_f64(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn geometric_log_density_matches_closed_form() {
        // P(k) = (1 − p)^k p with k counting failures.
        let d = Distribution::geometric(0.5).unwrap();
        assert!((d.log_density(&Sample::Nat(0)) - 0.5f64.ln()).abs() < TOL);
        assert!((d.log_density(&Sample::Nat(2)) - 3.0 * 0.5f64.ln()).abs() < TOL);
        // Mass sums to one over a long prefix.
        let total: f64 = (0..200).map(|k| d.density(&Sample::Nat(k))).sum();
        assert!((total - 1.0).abs() < 1e-10);
        // p = 1 is a point mass at zero.
        let point = Distribution::geometric(1.0).unwrap();
        assert_eq!(point.log_density(&Sample::Nat(0)), 0.0);
        assert_eq!(point.log_density(&Sample::Nat(1)), f64::NEG_INFINITY);
    }

    #[test]
    fn categorical_log_density_matches_closed_form() {
        let d = Distribution::categorical(vec![1.0, 2.0, 3.0]).unwrap();
        assert!((d.log_density(&Sample::Nat(0)) - (1f64 / 6.0).ln()).abs() < TOL);
        assert!((d.log_density(&Sample::Nat(1)) - (2f64 / 6.0).ln()).abs() < TOL);
        assert!((d.log_density(&Sample::Nat(2)) - (3f64 / 6.0).ln()).abs() < TOL);
        assert_eq!(d.log_density(&Sample::Nat(3)), f64::NEG_INFINITY);
        assert_eq!(d.kind(), DistKind::FinNat(3));
    }

    #[test]
    fn poisson_log_density_matches_closed_form() {
        // P(k) = λ^k e^{−λ} / k!.
        let d = Distribution::poisson(4.0).unwrap();
        assert!((d.log_density(&Sample::Nat(0)) + 4.0).abs() < 1e-10);
        let expected = 2.0 * 4f64.ln() - 4.0 - 2f64.ln();
        assert!((d.log_density(&Sample::Nat(2)) - expected).abs() < 1e-10);
        // Mass sums to one over a long prefix.
        let total: f64 = (0..100).map(|k| d.density(&Sample::Nat(k))).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn uniform_log_density_is_zero_on_the_open_interval() {
        let d = Distribution::uniform();
        assert_eq!(d.log_density_f64(0.25), 0.0);
        assert_eq!(d.log_density_f64(0.999), 0.0);
        assert_eq!(d.log_density_f64(0.0), f64::NEG_INFINITY);
        assert_eq!(d.log_density_f64(1.0), f64::NEG_INFINITY);
        assert_eq!(d.log_density_f64(-0.5), f64::NEG_INFINITY);
        assert_eq!(d.kind(), DistKind::UnitInterval);
    }

    // -------------------------------------------------- parameter validation

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Distribution::normal(0.0, 0.0).is_err());
        assert!(Distribution::normal(0.0, -1.0).is_err());
        assert!(Distribution::normal(f64::NAN, 1.0).is_err());
        assert!(Distribution::bernoulli(2.0).is_err());
        assert!(Distribution::bernoulli(-0.1).is_err());
        assert!(Distribution::beta(0.0, 1.0).is_err());
        assert!(Distribution::beta(1.0, f64::INFINITY).is_err());
        assert!(Distribution::gamma(-2.0, 1.0).is_err());
        assert!(Distribution::gamma(1.0, 0.0).is_err());
        assert!(Distribution::geometric(0.0).is_err());
        assert!(Distribution::geometric(1.5).is_err());
        assert!(Distribution::categorical(vec![]).is_err());
        assert!(Distribution::categorical(vec![1.0, 0.0]).is_err());
        assert!(Distribution::categorical(vec![1.0, -2.0]).is_err());
        assert!(Distribution::poisson(0.0).is_err());
        assert!(Distribution::poisson(f64::NAN).is_err());
        let err = Distribution::bernoulli(2.0).unwrap_err();
        assert!(err.to_string().contains("Bernoulli"));
    }

    // ------------------------------------------ carrier and support strictness

    #[test]
    fn wrong_carrier_samples_score_to_zero_weight() {
        // An unsound guide proposing naturals against a Gamma prior must get
        // weight zero, not a silent numeric coercion.
        let gamma = Distribution::gamma(2.0, 1.0).unwrap();
        assert_eq!(gamma.log_density(&Sample::Nat(3)), f64::NEG_INFINITY);
        assert!(!gamma.supports(&Sample::Nat(3)));
        let ber = Distribution::bernoulli(0.5).unwrap();
        assert_eq!(ber.log_density(&Sample::Real(1.0)), f64::NEG_INFINITY);
        let pois = Distribution::poisson(4.0).unwrap();
        assert_eq!(pois.log_density(&Sample::Real(2.0)), f64::NEG_INFINITY);
        // log_density_f64 converts exactly representable naturals/Booleans.
        assert!(pois.log_density_f64(2.0).is_finite());
        assert_eq!(pois.log_density_f64(2.5), f64::NEG_INFINITY);
        assert!(ber.log_density_f64(1.0).is_finite());
        assert_eq!(ber.log_density_f64(0.5), f64::NEG_INFINITY);
        // log_prob is an alias of log_density.
        assert_eq!(
            gamma.log_prob(&Sample::Real(1.5)),
            gamma.log_density(&Sample::Real(1.5))
        );
    }

    // --------------------------------------- property-style support sanity

    /// Every draw of every distribution lies in its declared [`DistKind`]
    /// support and scores a finite log-density.
    #[test]
    fn draws_lie_in_the_declared_support() {
        let dists = vec![
            Distribution::normal(-2.0, 3.0).unwrap(),
            Distribution::bernoulli(0.3).unwrap(),
            Distribution::beta(0.5, 0.5).unwrap(), // bathtub shape stresses the boundaries
            Distribution::beta(3.0, 1.0).unwrap(),
            Distribution::gamma(0.3, 2.0).unwrap(), // shape < 1 branch
            Distribution::gamma(7.5, 0.5).unwrap(),
            Distribution::geometric(0.2).unwrap(),
            Distribution::categorical(vec![0.2, 0.5, 0.3]).unwrap(),
            Distribution::poisson(4.0).unwrap(),
            Distribution::poisson(200.0).unwrap(), // chunked Knuth branch
            Distribution::uniform(),
        ];
        let mut rng = rng();
        for d in &dists {
            for _ in 0..2_000 {
                let s = d.draw(&mut rng);
                assert!(d.supports(&s), "{d}: draw {s} escaped the support");
                assert!(
                    d.log_density(&s) > f64::NEG_INFINITY,
                    "{d}: draw {s} has zero density"
                );
                match d.kind() {
                    DistKind::Real => {
                        let x = s.as_f64();
                        assert!(x.is_finite(), "{d}: {s}");
                    }
                    DistKind::PosReal => {
                        let x = s.as_f64();
                        assert!(x > 0.0 && x.is_finite(), "{d}: {s}");
                    }
                    DistKind::UnitInterval => {
                        let x = s.as_f64();
                        assert!(x > 0.0 && x < 1.0, "{d}: {s}");
                    }
                    DistKind::Bool => assert!(s.as_bool().is_some(), "{d}: {s}"),
                    DistKind::Nat => assert!(s.as_nat().is_some(), "{d}: {s}"),
                    DistKind::FinNat(n) => {
                        let k = s.as_nat().expect("categorical draws naturals");
                        assert!((k as usize) < n, "{d}: {s} out of nat[{n}]");
                    }
                }
            }
        }
    }

    #[test]
    fn sampler_moments_are_plausible() {
        let mut rng = rng();
        let n = 40_000;
        let mean_of = |d: &Distribution, rng: &mut Pcg32| -> f64 {
            (0..n).map(|_| d.sample(rng)).sum::<f64>() / n as f64
        };
        let cases: Vec<(Distribution, f64, f64)> = vec![
            (Distribution::normal(1.5, 2.0).unwrap(), 1.5, 0.05),
            (Distribution::bernoulli(0.3).unwrap(), 0.3, 0.02),
            (Distribution::beta(2.0, 2.0).unwrap(), 0.5, 0.02),
            (Distribution::gamma(2.0, 1.0).unwrap(), 2.0, 0.05),
            (Distribution::gamma(0.5, 2.0).unwrap(), 0.25, 0.02),
            (Distribution::geometric(0.5).unwrap(), 1.0, 0.05),
            (Distribution::poisson(4.0).unwrap(), 4.0, 0.08),
            (Distribution::uniform(), 0.5, 0.02),
            // Cat(1, 2, 3): E[k] = (0·1 + 1·2 + 2·3)/6 = 4/3.
            (
                Distribution::categorical(vec![1.0, 2.0, 3.0]).unwrap(),
                4.0 / 3.0,
                0.05,
            ),
        ];
        for (d, expected, tol) in cases {
            let m = mean_of(&d, &mut rng);
            assert!(
                (m - expected).abs() < tol,
                "{d}: mean {m}, expected {expected}"
            );
        }
    }

    #[test]
    fn draws_are_deterministic_given_the_seed() {
        let d = Distribution::normal(0.0, 1.0).unwrap();
        let mut a = Pcg32::seed_from_u64(99);
        let mut b = Pcg32::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(d.draw(&mut a), d.draw(&mut b));
        }
    }

    // ------------------------------------------------------------- plumbing

    #[test]
    fn kinds_and_display() {
        assert_eq!(
            Distribution::normal(0.0, 1.0).unwrap().kind(),
            DistKind::Real
        );
        assert_eq!(
            Distribution::gamma(1.0, 1.0).unwrap().kind(),
            DistKind::PosReal
        );
        assert_eq!(
            Distribution::beta(1.0, 2.0).unwrap().kind(),
            DistKind::UnitInterval
        );
        assert_eq!(Distribution::bernoulli(0.5).unwrap().kind(), DistKind::Bool);
        assert_eq!(Distribution::geometric(0.5).unwrap().kind(), DistKind::Nat);
        assert_eq!(Distribution::poisson(1.0).unwrap().kind(), DistKind::Nat);
        assert_eq!(
            Distribution::normal(0.0, 1.0).unwrap().to_string(),
            "Normal(0, 1)"
        );
        assert_eq!(
            Distribution::categorical(vec![1.0, 2.0])
                .unwrap()
                .to_string(),
            "Cat(1, 2)"
        );
        assert_eq!(Distribution::uniform().to_string(), "Unif");
        assert_eq!(DistKind::FinNat(3).to_string(), "nat[3]");
        assert_eq!(DistKind::PosReal.to_string(), "preal");
    }

    #[test]
    fn sample_accessors_and_display() {
        assert_eq!(Sample::Real(2.5).as_f64(), 2.5);
        assert_eq!(Sample::Nat(3).as_f64(), 3.0);
        assert_eq!(Sample::Bool(true).as_f64(), 1.0);
        assert_eq!(Sample::Bool(false).as_f64(), 0.0);
        assert_eq!(Sample::Bool(true).as_bool(), Some(true));
        assert_eq!(Sample::Real(1.0).as_bool(), None);
        assert_eq!(Sample::Nat(7).as_nat(), Some(7));
        assert_eq!(Sample::Real(7.0).as_nat(), None);
        assert_eq!(Sample::Real(1.0).to_string(), "1");
        assert_eq!(Sample::Nat(4).to_string(), "4");
        assert_eq!(Sample::Bool(false).to_string(), "false");
    }

    // ------------------------------------------------------ batched kernels

    fn batch_test_dists() -> Vec<Distribution> {
        vec![
            Distribution::normal(-2.0, 3.0).unwrap(),
            Distribution::bernoulli(0.3).unwrap(),
            Distribution::bernoulli(1.0).unwrap(),
            Distribution::beta(0.5, 2.5).unwrap(),
            Distribution::gamma(0.3, 2.0).unwrap(),
            Distribution::gamma(7.5, 0.5).unwrap(),
            Distribution::geometric(0.2).unwrap(),
            Distribution::geometric(1.0).unwrap(),
            Distribution::categorical(vec![0.2, 0.5, 0.3]).unwrap(),
            Distribution::poisson(4.0).unwrap(),
            Distribution::poisson(200.0).unwrap(),
            Distribution::uniform(),
        ]
    }

    #[test]
    fn log_density_batch_is_bit_identical_to_scalar() {
        // Values probing every carrier: in-support reals and naturals,
        // boundary values, subnormals, non-integral naturals, and
        // non-finite inputs.
        let xs = [
            -3.5,
            0.0,
            -0.0,
            0.25,
            0.5,
            1.0,
            2.0,
            7.0,
            250.0,
            f64::MIN_POSITIVE,       // smallest normal
            f64::MIN_POSITIVE / 2.0, // subnormal
            5e-324,                  // smallest subnormal
            1.0 - 1e-16,
            2.5,
            -1.0,
            1e18,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        for d in batch_test_dists() {
            let mut out = vec![0.0; xs.len()];
            d.log_density_batch(&xs, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                assert_eq!(
                    o.to_bits(),
                    d.log_density_f64(x).to_bits(),
                    "{d} at {x}: batch {o} vs scalar {}",
                    d.log_density_f64(x)
                );
            }
            // The empty slice is a no-op.
            d.log_density_batch(&[], &mut []);
        }
    }

    #[test]
    fn log_density_batch_scores_neg_inf_out_of_support() {
        // Wrong-carrier and out-of-support values must score −∞ exactly, so
        // that a block of weights containing them still reduces correctly
        // through log_sum_exp.
        let ber = Distribution::bernoulli(0.5).unwrap();
        let mut out = [0.0; 3];
        ber.log_density_batch(&[0.5, 2.0, f64::NAN], &mut out);
        assert!(out.iter().all(|&o| o == f64::NEG_INFINITY));
        assert_eq!(special::log_sum_exp(&out), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn log_density_batch_rejects_mismatched_lengths() {
        let d = Distribution::uniform();
        d.log_density_batch(&[0.5], &mut [0.0, 0.0]);
    }

    #[test]
    fn sample_batch_matches_scalar_draws_and_rng_states() {
        for d in batch_test_dists() {
            let master = Pcg32::seed_from_u64(0xB10C);
            let mut batch_rngs: Vec<Pcg32> = (0..33).map(|i| master.split(i)).collect();
            let mut scalar_rngs = batch_rngs.clone();
            let mut out = vec![Sample::Nat(0); batch_rngs.len()];
            d.sample_batch(&mut batch_rngs, &mut out);
            for ((rng, o), batch_rng) in scalar_rngs.iter_mut().zip(&out).zip(&batch_rngs) {
                let s = d.draw(rng);
                assert_eq!(s, *o, "{d}: batch draw diverged");
                assert_eq!(rng, batch_rng, "{d}: generator state diverged");
            }
            // The empty batch is a no-op.
            d.sample_batch(&mut [], &mut []);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sample_batch_rejects_mismatched_lengths() {
        let d = Distribution::uniform();
        d.sample_batch(&mut [], &mut [Sample::Nat(0)]);
    }

    #[test]
    fn density_is_exp_of_log_density() {
        let d = Distribution::gamma(2.0, 1.0).unwrap();
        let s = Sample::Real(1.3);
        assert!((d.density(&s) - d.log_density(&s).exp()).abs() < TOL);
        assert_eq!(d.density(&Sample::Real(-1.0)), 0.0);
    }
}
