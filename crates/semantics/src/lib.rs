//! Trace-based operational semantics for the guide-types PPL (§3 and
//! Appendix B of *Sound Probabilistic Inference via Guide Types*).
//!
//! * [`value`] — runtime values and environments.
//! * [`trace`] — guidance messages and traces.
//! * [`eval`] — the weighted big-step evaluation relation
//!   `V | (a : σ_a); (b : σ_b) ⊢ m ⇓_w v`, the probability-free reduction
//!   relation, and the density function `P_m`.
//! * [`typed_traces`] — the trace-typing judgment `σ : A` and a random
//!   generator of well-typed traces (used to property-test the type-safety
//!   theorems).
//!
//! # Example
//!
//! ```
//! use ppl_semantics::{Evaluator, Trace, Message, Value};
//! use ppl_dist::Sample;
//! use ppl_syntax::parse_program;
//!
//! let prog = parse_program(r#"
//!     proc P() : real consume latent {
//!       let x <- sample recv latent (Normal(0.0, 1.0));
//!       return x + 1.0
//!     }
//! "#).unwrap();
//! let latent = Trace::from_messages(vec![Message::ValP(Sample::Real(0.5))]);
//! let result = Evaluator::new(&prog)
//!     .run_proc(&"P".into(), &[], &latent, &Trace::new())
//!     .unwrap();
//! assert_eq!(result.value, Value::Real(1.5));
//! assert!(result.log_weight < 0.0);
//! ```

pub mod eval;
pub mod trace;
pub mod typed_traces;
pub mod value;

pub use eval::{eval_dist, eval_expr, EvalError, Evaluation, Evaluator, Mode};
pub use trace::{Message, Trace, TraceCursor};
pub use typed_traces::{generate_trace, sample_has_type, trace_has_type, GeneratorConfig};
pub use value::{Env, Value};
